#include "linalg/vector_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "linalg/simd.h"
#include "util/check.h"

namespace openapi::linalg {
namespace {

std::atomic<KernelPolicy> g_kernel_policy{KernelPolicy::kSimd};

}  // namespace

KernelPolicy GetKernelPolicy() {
  return g_kernel_policy.load(std::memory_order_relaxed);
}

void SetKernelPolicy(KernelPolicy policy) {
  g_kernel_policy.store(policy, std::memory_order_relaxed);
}

double Dot(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm1(const Vec& a) {
  double sum = 0.0;
  for (double x : a) sum += std::fabs(x);
  return sum;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vec& a) {
  double best = 0.0;
  for (double x : a) best = std::max(best, std::fabs(x));
  return best;
}

double L1Distance(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L2Distance(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

Vec Add(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scale(const Vec& a, double s) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Vec Hadamard(const Vec& a, const Vec& b) {
  OPENAPI_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  OPENAPI_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

size_t ArgMax(const Vec& a) {
  OPENAPI_CHECK(!a.empty());
  size_t best = 0;
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

bool AllFinite(const Vec& a) {
  for (double x : a) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

Vec Softmax(const Vec& logits) {
  OPENAPI_CHECK(!logits.empty());
  Vec out(logits.size());
  SoftmaxInto(logits.data(), logits.size(), out.data());
  return out;
}

void SoftmaxInto(const double* logits, size_t n, double* out) {
  OPENAPI_CHECK_GT(n, 0u);
  // Max scan and exp-sum stay scalar under every policy: the sum is a
  // reduction whose order fixes the result, and exp is a libm call. Only
  // the element-wise normalization widens — division is per-element, so
  // both policies are bit-identical.
  double max_logit = logits[0];
  for (size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  if (GetKernelPolicy() == KernelPolicy::kReference) {
    for (size_t i = 0; i < n; ++i) out[i] /= sum;
    return;
  }
  const simd::D4 sum4 = simd::D4::Broadcast(sum);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    (simd::D4::Load(out + i) / sum4).Store(out + i);
  }
  for (; i < n; ++i) out[i] /= sum;
}

Vec LogSoftmax(const Vec& logits) {
  OPENAPI_CHECK(!logits.empty());
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double x : logits) sum += std::exp(x - max_logit);
  double log_sum = max_logit + std::log(sum);
  Vec out(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_sum;
  return out;
}

}  // namespace openapi::linalg
