#include "linalg/matrix.h"

#include <cmath>

#include "linalg/simd.h"

namespace openapi::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    OPENAPI_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  OPENAPI_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Vec Matrix::Row(size_t r) const {
  OPENAPI_CHECK_LT(r, rows_);
  return Vec(RowPtr(r), RowPtr(r) + cols_);
}

Vec Matrix::Col(size_t c) const {
  OPENAPI_CHECK_LT(c, cols_);
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Vec& values) {
  OPENAPI_CHECK_LT(r, rows_);
  OPENAPI_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(r));
}

void Matrix::SetCol(size_t c, const Vec& values) {
  OPENAPI_CHECK_LT(c, cols_);
  OPENAPI_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Vec Matrix::Multiply(const Vec& x) const {
  Vec out;
  Multiply(x, &out);
  return out;
}

void Matrix::Multiply(const Vec& x, Vec* out) const {
  OPENAPI_CHECK_EQ(x.size(), cols_);
  out->resize(rows_);
  // Deliberately scalar under every policy: this single left-to-right dot
  // is the accumulation order all batch kernels reproduce per element —
  // the anchor of the batch/single parity contract.
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    (*out)[r] = sum;
  }
}

Vec Matrix::MultiplyTransposed(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), rows_);
  Vec out(cols_, 0.0);
  if (GetKernelPolicy() == KernelPolicy::kReference) {
    for (size_t r = 0; r < rows_; ++r) {
      const double* row = RowPtr(r);
      double xr = x[r];
      for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * xr;
    }
    return out;
  }
  // SIMD: widen the output-column loop. Element c still accumulates
  // row-by-row in r order, so each out[c] is bit-identical to the
  // reference loop.
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const simd::D8 xr8 = simd::D8::Broadcast(x[r]);
    const simd::D4 xr4 = simd::D4::Broadcast(x[r]);
    size_t c = 0;
    for (; c + 8 <= cols_; c += 8) {
      simd::MulAdd(xr8, simd::D8::Load(row + c), simd::D8::Load(&out[c]))
          .Store(&out[c]);
    }
    for (; c + 4 <= cols_; c += 4) {
      simd::MulAdd(xr4, simd::D4::Load(row + c), simd::D4::Load(&out[c]))
          .Store(&out[c]);
    }
    const double xr = x[r];
    for (; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  OPENAPI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // Cache-blocked i-k-j: within each (ii, kk, jj) tile the inner loop
  // streams contiguous rows of B and out, and the B tile (kBlock x kBlock
  // doubles = 32 KiB) stays L1/L2-resident while every row of the A tile
  // reuses it. For matrices smaller than one tile this degenerates to the
  // plain i-k-j loop with identical accumulation order. Under kSimd the
  // innermost j loop runs in vector lanes; out[i][j] still accumulates
  // a_ik * b_kj in the same k order, so both policies are bit-identical.
  const bool use_simd = GetKernelPolicy() == KernelPolicy::kSimd;
  constexpr size_t kBlock = 64;
  const size_t n = other.cols_;
  for (size_t ii = 0; ii < rows_; ii += kBlock) {
    const size_t i_end = std::min(ii + kBlock, rows_);
    for (size_t kk = 0; kk < cols_; kk += kBlock) {
      const size_t k_end = std::min(kk + kBlock, cols_);
      for (size_t jj = 0; jj < n; jj += kBlock) {
        const size_t j_end = std::min(jj + kBlock, n);
        for (size_t i = ii; i < i_end; ++i) {
          const double* a_row = RowPtr(i);
          double* out_row = out.RowPtr(i);
          for (size_t k = kk; k < k_end; ++k) {
            const double a_ik = a_row[k];
            // Skipping exact zeros is profitable on the masked affine
            // maps LocalModelAt composes; both policies must skip so the
            // (pathological) 0 * inf case cannot diverge between them.
            if (a_ik == 0.0) continue;
            const double* b_row = other.RowPtr(k);
            size_t j = jj;
            if (use_simd) {
              const simd::D8 a8 = simd::D8::Broadcast(a_ik);
              for (; j + 8 <= j_end; j += 8) {
                simd::MulAdd(a8, simd::D8::Load(b_row + j),
                             simd::D8::Load(out_row + j))
                    .Store(out_row + j);
              }
            }
            for (; j < j_end; ++j) {
              out_row[j] += a_ik * b_row[j];
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

/// Single left-to-right dot product — the scalar tail shared by both
/// A·Bᵀ kernels; matches Matrix::Multiply(Vec) per element.
inline double DotRows(const double* a, const double* b, size_t k) {
  double sum = 0.0;
  for (size_t t = 0; t < k; ++t) sum += a[t] * b[t];
  return sum;
}

/// Reference A·Bᵀ: 2x2 register blocking, scalar accumulator chains.
/// Four independent chains hide the FP-add latency that serializes a
/// single dot product; every chain still sums strictly left to right, so
/// each output stays bit-identical to Multiply(Vec) on the corresponding
/// row (the batch/single parity contract).
void MultiplyABtReference(const Matrix& lhs, const Matrix& rhs,
                          Matrix* out) {
  const size_t k = lhs.cols();
  const size_t n = rhs.rows();
  size_t i = 0;
  for (; i + 2 <= lhs.rows(); i += 2) {
    const double* a0 = lhs.RowPtr(i);
    const double* a1 = lhs.RowPtr(i + 1);
    double* o0 = out->RowPtr(i);
    double* o1 = out->RowPtr(i + 1);
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = rhs.RowPtr(j);
      const double* b1 = rhs.RowPtr(j + 1);
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (size_t t = 0; t < k; ++t) {
        const double a0t = a0[t], a1t = a1[t];
        const double b0t = b0[t], b1t = b1[t];
        s00 += a0t * b0t;
        s01 += a0t * b1t;
        s10 += a1t * b0t;
        s11 += a1t * b1t;
      }
      o0[j] = s00;
      o0[j + 1] = s01;
      o1[j] = s10;
      o1[j + 1] = s11;
    }
    for (; j < n; ++j) {
      const double* b = rhs.RowPtr(j);
      o0[j] = DotRows(a0, b, k);
      o1[j] = DotRows(a1, b, k);
    }
  }
  for (; i < lhs.rows(); ++i) {
    const double* a = lhs.RowPtr(i);
    double* o = out->RowPtr(i);
    for (size_t j = 0; j < n; ++j) o[j] = DotRows(a, rhs.RowPtr(j), k);
  }
}

/// SIMD A·Bᵀ. The j (output-column = B-row) loop widens into 8 lanes; to
/// feed it with one vector load per step instead of an 8-element gather,
/// B is first PACKED into 8-row column panels (the BLIS/GotoBLAS trick):
/// panel p stores B rows [8p, 8p+8) column-major, so offset 8t holds the
/// column-t slice across the panel's rows. Packing costs O(nk) once and
/// is reused by every row of A. The i loop blocks by 4, so each t feeds
/// four broadcast-multiply-add chains — 32 outputs in flight. Every lane
/// is its own accumulator advancing in t order, bit-identical to the
/// scalar dot of the corresponding (i, j). The final panel is padded
/// with zero rows; its pad lanes are computed and discarded.
void MultiplyABtSimd(const Matrix& lhs, const Matrix& rhs, Matrix* out) {
  constexpr size_t kPanel = simd::D8::kWidth;
  const size_t k = lhs.cols();
  const size_t n = rhs.rows();
  const size_t m = lhs.rows();
  if (k == 0 || n == 0 || m == 0) return;

  const size_t num_panels = (n + kPanel - 1) / kPanel;
  AlignedBuffer packed(num_panels * k * kPanel, 0.0);
  for (size_t j = 0; j < n; ++j) {
    const double* b = rhs.RowPtr(j);
    double* panel = packed.data() + (j / kPanel) * k * kPanel + j % kPanel;
    for (size_t t = 0; t < k; ++t) panel[t * kPanel] = b[t];
  }

  for (size_t p = 0; p < num_panels; ++p) {
    const double* panel = packed.data() + p * k * kPanel;
    const size_t j0 = p * kPanel;
    const size_t lanes = std::min(kPanel, n - j0);
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* a0 = lhs.RowPtr(i);
      const double* a1 = lhs.RowPtr(i + 1);
      const double* a2 = lhs.RowPtr(i + 2);
      const double* a3 = lhs.RowPtr(i + 3);
      simd::D8 s0 = simd::D8::Zero();
      simd::D8 s1 = simd::D8::Zero();
      simd::D8 s2 = simd::D8::Zero();
      simd::D8 s3 = simd::D8::Zero();
      for (size_t t = 0; t < k; ++t) {
        const simd::D8 bt = simd::D8::Load(panel + t * kPanel);
        s0 = simd::MulAdd(simd::D8::Broadcast(a0[t]), bt, s0);
        s1 = simd::MulAdd(simd::D8::Broadcast(a1[t]), bt, s1);
        s2 = simd::MulAdd(simd::D8::Broadcast(a2[t]), bt, s2);
        s3 = simd::MulAdd(simd::D8::Broadcast(a3[t]), bt, s3);
      }
      if (lanes == kPanel) {
        s0.Store(out->RowPtr(i) + j0);
        s1.Store(out->RowPtr(i + 1) + j0);
        s2.Store(out->RowPtr(i + 2) + j0);
        s3.Store(out->RowPtr(i + 3) + j0);
      } else {
        for (size_t l = 0; l < lanes; ++l) {
          out->RowPtr(i)[j0 + l] = s0[l];
          out->RowPtr(i + 1)[j0 + l] = s1[l];
          out->RowPtr(i + 2)[j0 + l] = s2[l];
          out->RowPtr(i + 3)[j0 + l] = s3[l];
        }
      }
    }
    for (; i < m; ++i) {
      const double* a = lhs.RowPtr(i);
      simd::D8 s = simd::D8::Zero();
      for (size_t t = 0; t < k; ++t) {
        s = simd::MulAdd(simd::D8::Broadcast(a[t]),
                         simd::D8::Load(panel + t * kPanel), s);
      }
      if (lanes == kPanel) {
        s.Store(out->RowPtr(i) + j0);
      } else {
        for (size_t l = 0; l < lanes; ++l) out->RowPtr(i)[j0 + l] = s[l];
      }
    }
  }
}

}  // namespace

Matrix Matrix::MultiplyABt(const Matrix& other) const {
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  if (GetKernelPolicy() == KernelPolicy::kReference) {
    MultiplyABtReference(*this, other, &out);
  } else {
    MultiplyABtSimd(*this, other, &out);
  }
  return out;
}

void Matrix::AddRowInPlace(const Vec& row) {
  OPENAPI_CHECK_EQ(row.size(), cols_);
  if (GetKernelPolicy() == KernelPolicy::kReference) {
    for (size_t r = 0; r < rows_; ++r) {
      double* out_row = RowPtr(r);
      for (size_t c = 0; c < cols_; ++c) out_row[c] += row[c];
    }
    return;
  }
  for (size_t r = 0; r < rows_; ++r) {
    double* out_row = RowPtr(r);
    size_t c = 0;
    for (; c + 8 <= cols_; c += 8) {
      (simd::D8::Load(out_row + c) + simd::D8::Load(&row[c]))
          .Store(out_row + c);
    }
    for (; c < cols_; ++c) out_row[c] += row[c];
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = row[c];
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += other.data_[i];
  }
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

void Matrix::ScaleInPlace(double s) {
  for (double& x : data_) x *= s;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace openapi::linalg
