#include "linalg/matrix.h"

#include <cmath>

namespace openapi::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    OPENAPI_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  OPENAPI_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

Vec Matrix::Row(size_t r) const {
  OPENAPI_CHECK_LT(r, rows_);
  return Vec(RowPtr(r), RowPtr(r) + cols_);
}

Vec Matrix::Col(size_t c) const {
  OPENAPI_CHECK_LT(c, cols_);
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Vec& values) {
  OPENAPI_CHECK_LT(r, rows_);
  OPENAPI_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(r));
}

void Matrix::SetCol(size_t c, const Vec& values) {
  OPENAPI_CHECK_LT(c, cols_);
  OPENAPI_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Vec Matrix::Multiply(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), cols_);
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    out[r] = sum;
  }
  return out;
}

Vec Matrix::MultiplyTransposed(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), rows_);
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  OPENAPI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a_ik * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = row[c];
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += other.data_[i];
  }
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

void Matrix::ScaleInPlace(double s) {
  for (double& x : data_) x *= s;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace openapi::linalg
