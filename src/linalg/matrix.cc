#include "linalg/matrix.h"

#include <cmath>

namespace openapi::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    OPENAPI_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  OPENAPI_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

Vec Matrix::Row(size_t r) const {
  OPENAPI_CHECK_LT(r, rows_);
  return Vec(RowPtr(r), RowPtr(r) + cols_);
}

Vec Matrix::Col(size_t c) const {
  OPENAPI_CHECK_LT(c, cols_);
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Vec& values) {
  OPENAPI_CHECK_LT(r, rows_);
  OPENAPI_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(r));
}

void Matrix::SetCol(size_t c, const Vec& values) {
  OPENAPI_CHECK_LT(c, cols_);
  OPENAPI_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Vec Matrix::Multiply(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), cols_);
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    out[r] = sum;
  }
  return out;
}

Vec Matrix::MultiplyTransposed(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), rows_);
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  OPENAPI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // Cache-blocked i-k-j: within each (ii, kk, jj) tile the inner loop
  // streams contiguous rows of B and out, and the B tile (kBlock x kBlock
  // doubles = 32 KiB) stays L1/L2-resident while every row of the A tile
  // reuses it. For matrices smaller than one tile this degenerates to the
  // plain i-k-j loop with identical accumulation order.
  constexpr size_t kBlock = 64;
  const size_t n = other.cols_;
  for (size_t ii = 0; ii < rows_; ii += kBlock) {
    const size_t i_end = std::min(ii + kBlock, rows_);
    for (size_t kk = 0; kk < cols_; kk += kBlock) {
      const size_t k_end = std::min(kk + kBlock, cols_);
      for (size_t jj = 0; jj < n; jj += kBlock) {
        const size_t j_end = std::min(jj + kBlock, n);
        for (size_t i = ii; i < i_end; ++i) {
          const double* a_row = RowPtr(i);
          double* out_row = out.RowPtr(i);
          for (size_t k = kk; k < k_end; ++k) {
            const double a_ik = a_row[k];
            if (a_ik == 0.0) continue;
            const double* b_row = other.RowPtr(k);
            for (size_t j = jj; j < j_end; ++j) {
              out_row[j] += a_ik * b_row[j];
            }
          }
        }
      }
    }
  }
  return out;
}

Matrix Matrix::MultiplyABt(const Matrix& other) const {
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  const size_t k = cols_;
  const size_t n = other.rows_;
  // 2x2 register blocking: four independent accumulator chains hide the
  // FP-add latency that serializes a single dot product — the throughput
  // edge the batch path has over per-sample matvecs. Every chain still
  // sums strictly left to right, so each output stays bit-identical to
  // Multiply(Vec) on the corresponding row (the batch/single parity
  // contract).
  auto dot = [k](const double* a, const double* b) {
    double sum = 0.0;
    for (size_t t = 0; t < k; ++t) sum += a[t] * b[t];
    return sum;
  };
  size_t i = 0;
  for (; i + 2 <= rows_; i += 2) {
    const double* a0 = RowPtr(i);
    const double* a1 = RowPtr(i + 1);
    double* o0 = out.RowPtr(i);
    double* o1 = out.RowPtr(i + 1);
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = other.RowPtr(j);
      const double* b1 = other.RowPtr(j + 1);
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (size_t t = 0; t < k; ++t) {
        const double a0t = a0[t], a1t = a1[t];
        const double b0t = b0[t], b1t = b1[t];
        s00 += a0t * b0t;
        s01 += a0t * b1t;
        s10 += a1t * b0t;
        s11 += a1t * b1t;
      }
      o0[j] = s00;
      o0[j + 1] = s01;
      o1[j] = s10;
      o1[j + 1] = s11;
    }
    for (; j < n; ++j) {
      const double* b = other.RowPtr(j);
      o0[j] = dot(a0, b);
      o1[j] = dot(a1, b);
    }
  }
  for (; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t j = 0; j < n; ++j) o[j] = dot(a, other.RowPtr(j));
  }
  return out;
}

void Matrix::AddRowInPlace(const Vec& row) {
  OPENAPI_CHECK_EQ(row.size(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* out_row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out_row[c] += row[c];
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = row[c];
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += other.data_[i];
  }
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  OPENAPI_CHECK_EQ(rows_, other.rows_);
  OPENAPI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

void Matrix::ScaleInPlace(double s) {
  for (double& x : data_) x *= s;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace openapi::linalg
