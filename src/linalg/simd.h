// Portable double-lane SIMD helpers, INTERNAL to linalg/.
//
// The matrix kernels vectorize by widening their innermost j
// (output-column) loop: N output elements advance together, each keeping
// its own accumulator chain, so the per-element accumulation order over
// the contraction index is exactly the scalar kernel's — the bit-parity
// contract the batch/single tests enforce. This header provides the lane
// types those kernels use and nothing else; no intrinsics or vector
// extensions appear outside linalg/ translation units.
//
// On GCC/Clang the lanes compile to native vector code through the
// generic vector extensions (SSE2/AVX/AVX-512 as the target allows, no
// per-ISA code here); elsewhere they fall back to a plain array the
// optimizer can still unroll. Loads and stores go through memcpy, so no
// alignment is assumed (Matrix rows are only aligned when the column
// count happens to be a multiple of the lane width) — the 64-byte-aligned
// Matrix buffer guarantees the FIRST row is aligned and lets the common
// power-of-two shapes run fully aligned.

#ifndef OPENAPI_LINALG_SIMD_H_
#define OPENAPI_LINALG_SIMD_H_

#include <cstddef>
#include <cstring>

namespace openapi::linalg::simd {

#if defined(__GNUC__) || defined(__clang__)
#define OPENAPI_SIMD_VECTOR_EXTENSIONS 1
#endif

/// Register type backing a width-N lane group. GCC requires a literal
/// operand for vector_size (a dependent N is silently dropped inside a
/// template), hence the explicit specializations.
template <std::size_t N>
struct LaneReg {
  struct Type {
    double lane[N];
  };
};

#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
// `aligned(8)` relaxes the types' default (N*8-byte) alignment so lane
// values can live at any spill slot; actual loads/stores below go through
// memcpy and carry no alignment assumption either.
template <>
struct LaneReg<4> {
  typedef double Type __attribute__((vector_size(32), aligned(8)));
};
template <>
struct LaneReg<8> {
  typedef double Type __attribute__((vector_size(64), aligned(8)));
};
#endif

/// N doubles processed in lockstep. Supported widths: 4 and 8.
template <std::size_t N>
struct Lanes {
  static constexpr std::size_t kWidth = N;
  using Reg = typename LaneReg<N>::Type;

  Reg v;

  static Lanes Load(const double* p) {
    Lanes out;
    std::memcpy(&out.v, p, sizeof(out.v));
    return out;
  }

  static Lanes Broadcast(double x) {
    Lanes out;
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    out.v = x - Reg{};  // splat: {x,x,...} with no per-lane loop
#else
    for (std::size_t i = 0; i < N; ++i) out.v.lane[i] = x;
#endif
    return out;
  }

  static Lanes Zero() { return Broadcast(0.0); }

  void Store(double* p) const { std::memcpy(p, &v, sizeof(v)); }

  double operator[](std::size_t i) const {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    return v[i];
#else
    return v.lane[i];
#endif
  }

  void Set(std::size_t i, double x) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    v[i] = x;
#else
    v.lane[i] = x;
#endif
  }

  friend Lanes operator+(Lanes a, Lanes b) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    a.v = a.v + b.v;
#else
    for (std::size_t i = 0; i < N; ++i) a.v.lane[i] += b.v.lane[i];
#endif
    return a;
  }

  friend Lanes operator-(Lanes a, Lanes b) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    a.v = a.v - b.v;
#else
    for (std::size_t i = 0; i < N; ++i) a.v.lane[i] -= b.v.lane[i];
#endif
    return a;
  }

  friend Lanes operator*(Lanes a, Lanes b) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    a.v = a.v * b.v;
#else
    for (std::size_t i = 0; i < N; ++i) a.v.lane[i] *= b.v.lane[i];
#endif
    return a;
  }

  friend Lanes operator/(Lanes a, Lanes b) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
    a.v = a.v / b.v;
#else
    for (std::size_t i = 0; i < N; ++i) a.v.lane[i] /= b.v.lane[i];
#endif
    return a;
  }

  Lanes& operator+=(Lanes b) {
    *this = *this + b;
    return *this;
  }
};

using D4 = Lanes<4>;
using D8 = Lanes<8>;

/// acc + a * b, element-wise. Written as the plain expression so the
/// compiler applies exactly the same FP contraction it applies to the
/// scalar kernels' `sum += a * b` — keeping the two paths bit-identical
/// whether or not FMA contraction is enabled.
template <std::size_t N>
inline Lanes<N> MulAdd(Lanes<N> a, Lanes<N> b, Lanes<N> acc) {
#if defined(OPENAPI_SIMD_VECTOR_EXTENSIONS)
  acc.v = acc.v + a.v * b.v;
  return acc;
#else
  for (std::size_t i = 0; i < N; ++i) {
    acc.v.lane[i] = acc.v.lane[i] + a.v.lane[i] * b.v.lane[i];
  }
  return acc;
#endif
}

}  // namespace openapi::linalg::simd

#endif  // OPENAPI_LINALG_SIMD_H_
