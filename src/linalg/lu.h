// LU decomposition with partial pivoting.
//
// Used by the naive method (Sec. IV-B): the determined (d+1)x(d+1) system
// Ω_{d+1} is solved through a single LU factorization, reused across all
// C-1 class pairs because they share the coefficient matrix A (only the
// right-hand side ln(y_c/y_{c'}) changes).

#ifndef OPENAPI_LINALG_LU_H_
#define OPENAPI_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace openapi::linalg {

/// PA = LU factorization of a square matrix. Construction via Factor();
/// singularity is reported as Status::NumericalError.
class LuDecomposition {
 public:
  /// Factors `a` (must be square). Fails with NumericalError if a pivot is
  /// (near-)zero, i.e., the matrix is singular to working precision.
  static Result<LuDecomposition> Factor(const Matrix& a);

  /// Solves A x = b for one right-hand side.
  Vec Solve(const Vec& b) const;

  /// Solves A X = B column-by-column; B is n x k.
  Matrix SolveMany(const Matrix& b) const;

  /// Determinant of A (product of U's diagonal with pivot sign).
  double Determinant() const;

  /// Reciprocal condition estimate: min|u_ii| / max|u_ii|. A cheap proxy
  /// sufficient for detecting the degenerate probe sets the paper's
  /// Lemma 1 rules out almost surely.
  double ReciprocalPivotRatio() const;

  size_t n() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), pivot_sign_(sign) {}

  Matrix lu_;                 // L (unit lower) and U packed together
  std::vector<size_t> perm_;  // row permutation
  int pivot_sign_;
};

}  // namespace openapi::linalg

#endif  // OPENAPI_LINALG_LU_H_
