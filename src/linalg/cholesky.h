// Cholesky factorization of symmetric positive-definite matrices.
//
// Used by Ridge Regression LIME: the ridge estimate solves the normal
// equations (A^T A + lambda I) x = A^T b, whose left-hand side is SPD for
// lambda > 0 — exactly Cholesky territory.

#ifndef OPENAPI_LINALG_CHOLESKY_H_
#define OPENAPI_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace openapi::linalg {

/// A = L L^T with L lower triangular.
class CholeskyDecomposition {
 public:
  /// Factors a symmetric positive-definite matrix. Only the lower triangle
  /// of `a` is read. Fails with NumericalError if a is not PD to working
  /// precision.
  static Result<CholeskyDecomposition> Factor(const Matrix& a);

  /// Solves A x = b.
  Vec Solve(const Vec& b) const;

  size_t n() const { return l_.rows(); }

 private:
  explicit CholeskyDecomposition(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

}  // namespace openapi::linalg

#endif  // OPENAPI_LINALG_CHOLESKY_H_
