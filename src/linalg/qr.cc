#include "linalg/qr.h"

#include <cmath>

#include "util/string_util.h"

namespace openapi::linalg {

Result<QrDecomposition> QrDecomposition::Factor(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n || n == 0) {
    return Status::InvalidArgument(util::StrFormat(
        "QR requires rows >= cols >= 1; got %zux%zu", m, n));
  }
  Matrix qr = a;
  Vec tau(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) norm_sq += qr(i, k) * qr(i, k);
    double norm = std::sqrt(norm_sq);
    if (norm == 0.0 || !std::isfinite(norm)) {
      return Status::NumericalError(
          util::StrFormat("rank-deficient matrix at column %zu", k));
    }
    double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    double v0 = qr(k, k) - alpha;
    // tau = 2 / (v^T v) with v = (v0, a_{k+1,k}, ..., a_{m-1,k}).
    double v_norm_sq = v0 * v0;
    for (size_t i = k + 1; i < m; ++i) v_norm_sq += qr(i, k) * qr(i, k);
    if (v_norm_sq == 0.0) {
      // Column already zero below the diagonal; reflection is the identity.
      tau[k] = 0.0;
      qr(k, k) = alpha;
      continue;
    }
    tau[k] = 2.0 / v_norm_sq;
    // Store v normalized so that v[0] = v0 stays explicit: we keep v0 in a
    // scratch and the subdiagonal entries as-is, applying reflections with
    // the (v0, sub) pair. To keep the compact format self-describing we
    // scale v so v[0] = 1 and fold the scaling into tau.
    for (size_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    tau[k] *= v0 * v0;
    qr(k, k) = alpha;

    // Apply (I - tau v v^T) to the trailing columns.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = qr(k, j);  // v[0] = 1
      for (size_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, j);
      double scale = tau[k] * dot;
      qr(k, j) -= scale;
      for (size_t i = k + 1; i < m; ++i) qr(i, j) -= scale * qr(i, k);
    }
  }

  // Detect rank deficiency from R's diagonal.
  double max_diag = 0.0;
  for (size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr(k, k)));
  }
  constexpr double kRankTol = 1e-13;
  for (size_t k = 0; k < n; ++k) {
    if (std::fabs(qr(k, k)) <= kRankTol * max_diag) {
      return Status::NumericalError(util::StrFormat(
          "rank-deficient matrix: |R[%zu,%zu]| below tolerance", k, k));
    }
  }
  return QrDecomposition(a, std::move(qr), std::move(tau));
}

Vec QrDecomposition::ApplyQTransposed(const Vec& v) const {
  const size_t m = qr_.rows();
  const size_t n = qr_.cols();
  OPENAPI_CHECK_EQ(v.size(), m);
  Vec y = v;
  for (size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double dot = y[k];  // v[0] = 1
    for (size_t i = k + 1; i < m; ++i) dot += qr_(i, k) * y[i];
    double scale = tau_[k] * dot;
    y[k] -= scale;
    for (size_t i = k + 1; i < m; ++i) y[i] -= scale * qr_(i, k);
  }
  return y;
}

LeastSquaresSolution QrDecomposition::Solve(const Vec& b) const {
  const size_t m = qr_.rows();
  const size_t n = qr_.cols();
  OPENAPI_CHECK_EQ(b.size(), m);

  Vec qtb = ApplyQTransposed(b);

  // Back substitution: R x = qtb[0..n-1].
  Vec x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    const double* row = qr_.RowPtr(ii);
    for (size_t j = ii + 1; j < n; ++j) sum -= row[j] * x[j];
    x[ii] = sum / row[ii];
  }

  // Exact residual in the original coordinates.
  Vec ax = a_.Multiply(x);
  double norm2_sq = 0.0;
  double norminf = 0.0;
  for (size_t i = 0; i < m; ++i) {
    double r = ax[i] - b[i];
    norm2_sq += r * r;
    norminf = std::max(norminf, std::fabs(r));
  }
  return LeastSquaresSolution{std::move(x), std::sqrt(norm2_sq), norminf};
}

double QrDecomposition::ReciprocalPivotRatio() const {
  const size_t n = qr_.cols();
  double min_p = std::fabs(qr_(0, 0));
  double max_p = min_p;
  for (size_t k = 1; k < n; ++k) {
    double p = std::fabs(qr_(k, k));
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  if (max_p == 0.0) return 0.0;
  return min_p / max_p;
}

}  // namespace openapi::linalg
