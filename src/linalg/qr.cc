#include "linalg/qr.h"

#include <cmath>

#include "linalg/simd.h"
#include "util/string_util.h"

namespace openapi::linalg {
namespace {

/// Applies the reflection (I - tau v v^T) to trailing columns [k+1, n) of
/// qr, with v = (1, qr(k+1..m-1, k)). The j (column) loop widens into
/// vector lanes: each column's dot product still accumulates over rows in
/// i order and each element's update is the same mul-then-subtract, so
/// the result is bit-identical to the scalar loop under kReference. This
/// is the O(m n) inner heart of the factorization — the solver spends a
/// third of a shrink iteration here at paper-scale d.
void ApplyReflection(Matrix& qr, size_t k, double tau_k) {
  const size_t m = qr.rows();
  const size_t n = qr.cols();
  if (GetKernelPolicy() == KernelPolicy::kReference) {
    for (size_t j = k + 1; j < n; ++j) {
      double dot = qr(k, j);  // v[0] = 1
      for (size_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, j);
      double scale = tau_k * dot;
      qr(k, j) -= scale;
      for (size_t i = k + 1; i < m; ++i) qr(i, j) -= scale * qr(i, k);
    }
    return;
  }
  const simd::D8 tau8 = simd::D8::Broadcast(tau_k);
  size_t j = k + 1;
  for (; j + 8 <= n; j += 8) {
    simd::D8 dot = simd::D8::Load(qr.RowPtr(k) + j);
    for (size_t i = k + 1; i < m; ++i) {
      dot = simd::MulAdd(simd::D8::Broadcast(qr(i, k)),
                         simd::D8::Load(qr.RowPtr(i) + j), dot);
    }
    const simd::D8 scale = tau8 * dot;
    (simd::D8::Load(qr.RowPtr(k) + j) - scale).Store(qr.RowPtr(k) + j);
    for (size_t i = k + 1; i < m; ++i) {
      (simd::D8::Load(qr.RowPtr(i) + j) -
       scale * simd::D8::Broadcast(qr(i, k)))
          .Store(qr.RowPtr(i) + j);
    }
  }
  for (; j < n; ++j) {
    double dot = qr(k, j);
    for (size_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, j);
    double scale = tau_k * dot;
    qr(k, j) -= scale;
    for (size_t i = k + 1; i < m; ++i) qr(i, j) -= scale * qr(i, k);
  }
}

}  // namespace

Result<QrDecomposition> QrDecomposition::Factor(const Matrix& a) {
  QrDecomposition out;
  OPENAPI_RETURN_NOT_OK(out.Refactor(a));
  return out;
}

Status QrDecomposition::Refactor(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n || n == 0) {
    return Status::InvalidArgument(util::StrFormat(
        "QR requires rows >= cols >= 1; got %zux%zu", m, n));
  }
  // Copy assignments reuse this object's buffers once their capacity has
  // grown to the request's largest shape — the allocation-free property
  // the solver's per-request workspace depends on.
  a_ = a;
  qr_ = a;
  tau_.assign(n, 0.0);
  Matrix& qr = qr_;
  Vec& tau = tau_;

  for (size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) norm_sq += qr(i, k) * qr(i, k);
    double norm = std::sqrt(norm_sq);
    if (norm == 0.0 || !std::isfinite(norm)) {
      return Status::NumericalError(
          util::StrFormat("rank-deficient matrix at column %zu", k));
    }
    double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    double v0 = qr(k, k) - alpha;
    // tau = 2 / (v^T v) with v = (v0, a_{k+1,k}, ..., a_{m-1,k}).
    double v_norm_sq = v0 * v0;
    for (size_t i = k + 1; i < m; ++i) v_norm_sq += qr(i, k) * qr(i, k);
    if (v_norm_sq == 0.0) {
      // Column already zero below the diagonal; reflection is the identity.
      tau[k] = 0.0;
      qr(k, k) = alpha;
      continue;
    }
    tau[k] = 2.0 / v_norm_sq;
    // Store v normalized so that v[0] = v0 stays explicit: we keep v0 in a
    // scratch and the subdiagonal entries as-is, applying reflections with
    // the (v0, sub) pair. To keep the compact format self-describing we
    // scale v so v[0] = 1 and fold the scaling into tau.
    for (size_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    tau[k] *= v0 * v0;
    qr(k, k) = alpha;

    // Apply (I - tau v v^T) to the trailing columns (SIMD across j under
    // kSimd; bit-identical either way).
    ApplyReflection(qr, k, tau[k]);
  }

  // Detect rank deficiency from R's diagonal.
  double max_diag = 0.0;
  for (size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr(k, k)));
  }
  constexpr double kRankTol = 1e-13;
  for (size_t k = 0; k < n; ++k) {
    if (std::fabs(qr(k, k)) <= kRankTol * max_diag) {
      return Status::NumericalError(util::StrFormat(
          "rank-deficient matrix: |R[%zu,%zu]| below tolerance", k, k));
    }
  }
  return Status::OK();
}

void QrDecomposition::ApplyQTransposedInPlace(Vec* y) const {
  const size_t m = qr_.rows();
  const size_t n = qr_.cols();
  OPENAPI_CHECK_EQ(y->size(), m);
  for (size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double dot = (*y)[k];  // v[0] = 1
    for (size_t i = k + 1; i < m; ++i) dot += qr_(i, k) * (*y)[i];
    double scale = tau_[k] * dot;
    (*y)[k] -= scale;
    for (size_t i = k + 1; i < m; ++i) (*y)[i] -= scale * qr_(i, k);
  }
}

Vec QrDecomposition::ApplyQTransposed(const Vec& v) const {
  Vec y = v;
  ApplyQTransposedInPlace(&y);
  return y;
}

LeastSquaresSolution QrDecomposition::Solve(const Vec& b) const {
  Scratch scratch;
  LeastSquaresSolution solution;
  Solve(b, &scratch, &solution);
  return solution;
}

void QrDecomposition::Solve(const Vec& b, Scratch* scratch,
                            LeastSquaresSolution* solution) const {
  const size_t m = qr_.rows();
  const size_t n = qr_.cols();
  OPENAPI_CHECK_EQ(b.size(), m);

  Vec& qtb = scratch->qtb;
  qtb.assign(b.begin(), b.end());
  ApplyQTransposedInPlace(&qtb);

  // Back substitution: R x = qtb[0..n-1].
  Vec& x = solution->x;
  x.resize(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    const double* row = qr_.RowPtr(ii);
    for (size_t j = ii + 1; j < n; ++j) sum -= row[j] * x[j];
    x[ii] = sum / row[ii];
  }

  // Exact residual in the original coordinates.
  a_.Multiply(x, &scratch->ax);
  double norm2_sq = 0.0;
  double norminf = 0.0;
  for (size_t i = 0; i < m; ++i) {
    double r = scratch->ax[i] - b[i];
    norm2_sq += r * r;
    norminf = std::max(norminf, std::fabs(r));
  }
  solution->residual_norm2 = std::sqrt(norm2_sq);
  solution->residual_norminf = norminf;
}

double QrDecomposition::ReciprocalPivotRatio() const {
  const size_t n = qr_.cols();
  double min_p = std::fabs(qr_(0, 0));
  double max_p = min_p;
  for (size_t k = 1; k < n; ++k) {
    double p = std::fabs(qr_(k, k));
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  if (max_p == 0.0) return 0.0;
  return min_p / max_p;
}

}  // namespace openapi::linalg
