// Free functions over dense vectors (std::vector<double>).
//
// The library standardizes on `linalg::Vec` (a std::vector<double> alias)
// for feature vectors, probability vectors, and decision-feature vectors.
// Operations that the paper's math uses directly — dot products, L1/L2/inf
// norms, cosine similarity (Fig. 4's consistency metric) — live here.

#ifndef OPENAPI_LINALG_VECTOR_OPS_H_
#define OPENAPI_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace openapi::linalg {

using Vec = std::vector<double>;

/// Which implementation the vectorizable linalg kernels (Matrix products,
/// AddRowInPlace, Softmax normalization) dispatch to. kSimd widens the
/// innermost output-column loop into vector lanes; kReference is the
/// plain scalar loop. The two are BIT-IDENTICAL by construction — every
/// output element accumulates over the contraction index in the same
/// left-to-right order — so kReference exists for element-for-element
/// diffing in tests and as the baseline leg of the kernel benches.
enum class KernelPolicy { kSimd, kReference };

/// Process-wide kernel selection (atomic; safe to read concurrently).
/// Tests set kReference, compute, restore kSimd, and diff.
KernelPolicy GetKernelPolicy();
void SetKernelPolicy(KernelPolicy policy);

/// Dot product. Sizes must match.
double Dot(const Vec& a, const Vec& b);

/// Sum of |a_i| (L1 norm).
double Norm1(const Vec& a);

/// Euclidean norm.
double Norm2(const Vec& a);

/// Max |a_i| (infinity norm). Returns 0 for empty vectors.
double NormInf(const Vec& a);

/// ||a - b||_1. Sizes must match.
double L1Distance(const Vec& a, const Vec& b);

/// ||a - b||_2. Sizes must match.
double L2Distance(const Vec& a, const Vec& b);

/// Cosine similarity a.b / (||a|| ||b||); 0 if either vector is all-zero.
double CosineSimilarity(const Vec& a, const Vec& b);

/// Element-wise a + b.
Vec Add(const Vec& a, const Vec& b);

/// Element-wise a - b.
Vec Sub(const Vec& a, const Vec& b);

/// s * a.
Vec Scale(const Vec& a, double s);

/// Element-wise product.
Vec Hadamard(const Vec& a, const Vec& b);

/// y += alpha * x (BLAS axpy). Sizes must match.
void Axpy(double alpha, const Vec& x, Vec* y);

/// Index of the maximum entry; ties broken toward the lowest index.
/// Vector must be non-empty.
size_t ArgMax(const Vec& a);

/// True iff every entry is finite.
bool AllFinite(const Vec& a);

/// Numerically stable softmax of `logits`.
Vec Softmax(const Vec& logits);

/// Softmax of logits[0..n) written into out[0..n) (may not alias). The
/// raw-pointer form lets batch forwards softmax one matrix row directly
/// into a reusable output buffer — no row copy, no allocation. Identical
/// arithmetic to Softmax (same max, same summation order).
void SoftmaxInto(const double* logits, size_t n, double* out);

/// Numerically stable log-softmax of `logits`.
Vec LogSoftmax(const Vec& logits);

}  // namespace openapi::linalg

#endif  // OPENAPI_LINALG_VECTOR_OPS_H_
