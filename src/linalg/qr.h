// Householder QR factorization for rectangular systems.
//
// OpenAPI's core operation is solving the overdetermined (d+2)x(d+1) system
// Ω_{d+2} and deciding whether it is *consistent* (Theorem 2: consistency
// certifies that the solution equals the true core parameters with
// probability 1). QR gives both in one pass: the least-squares minimizer
// and, from the residual, the consistency verdict. The factorization is
// computed once per probe set and reused for all C-1 right-hand sides.

#ifndef OPENAPI_LINALG_QR_H_
#define OPENAPI_LINALG_QR_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace openapi::linalg {

/// Result of a least-squares solve: the minimizer and residual diagnostics.
struct LeastSquaresSolution {
  Vec x;                    // argmin ||A x - b||_2
  double residual_norm2;    // ||A x - b||_2 at the minimizer
  double residual_norminf;  // max_i |(A x - b)_i|
};

/// A = QR via Householder reflections; requires rows >= cols.
class QrDecomposition {
 public:
  /// Reusable scratch for the allocation-free Solve overload.
  struct Scratch {
    Vec qtb;  // Q^T b workspace
    Vec ax;   // A x workspace for the exact residual
  };

  /// An empty decomposition; Refactor before use. Exists so a solver
  /// workspace can hold one QR object whose storage is reused across
  /// shrink iterations.
  QrDecomposition() = default;

  /// Factors `a` (m x n with m >= n). Rank deficiency to working precision
  /// is reported as NumericalError (the paper's Lemma 1 says random probes
  /// make A full column rank with probability 1, so hitting this means the
  /// probe set was degenerate and should be re-sampled).
  static Result<QrDecomposition> Factor(const Matrix& a);

  /// Factor's allocation-free sibling: factors `a` into THIS object,
  /// reusing its existing storage whenever the capacities suffice (always,
  /// after the first call at a given shape). Same errors as Factor; after
  /// a failure the decomposition is unusable until the next successful
  /// Refactor.
  Status Refactor(const Matrix& a);

  /// Least-squares solve min_x ||A x - b||_2 with residual diagnostics.
  LeastSquaresSolution Solve(const Vec& b) const;

  /// Solve's allocation-free sibling: writes the minimizer into
  /// solution->x and works out of *scratch, reusing both buffers' storage
  /// across calls.
  void Solve(const Vec& b, Scratch* scratch,
             LeastSquaresSolution* solution) const;

  /// Applies Q^T to a vector of length m (exposed for tests).
  Vec ApplyQTransposed(const Vec& v) const;

  size_t rows() const { return qr_.rows(); }
  size_t cols() const { return qr_.cols(); }

  /// min diag |R| / max diag |R| — cheap rank-quality proxy.
  double ReciprocalPivotRatio() const;

 private:
  /// In-place Q^T y over a length-m buffer.
  void ApplyQTransposedInPlace(Vec* y) const;

  // Original matrix, kept to report exact residuals (A x - b) in the input
  // coordinates; cheap at OpenAPI's (d+2) x (d+1) sizes.
  Matrix a_;
  // Householder vectors stored below R's diagonal; tau_ holds the scalar
  // factors. Standard LAPACK-style compact representation.
  Matrix qr_;
  Vec tau_;
};

}  // namespace openapi::linalg

#endif  // OPENAPI_LINALG_QR_H_
