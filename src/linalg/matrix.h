// Dense row-major double matrix.
//
// This is the library's workhorse container: locally linear classifier
// coefficient matrices W (d x C), probe coefficient matrices A
// ((d+2) x (d+1)), and network layer weights all use it. It deliberately
// stays small — just storage, element access, and the handful of products
// the solvers and models need. Factorizations live in lu.h / qr.h /
// cholesky.h.
//
// The product kernels come in two implementations selected by a
// process-wide KernelPolicy: kSimd (the default) widens the innermost
// output-column loop into vector lanes, kReference is the plain scalar
// loop. Both accumulate every output element over the contraction index
// in the same left-to-right order, so the two policies are BIT-IDENTICAL
// on every input — kReference exists so tests can diff the SIMD kernels
// element-for-element, and as the fallback reading for the parity
// contract comments below. Storage is 64-byte aligned (aligned_alloc.h)
// so vector loads on row 0 and on power-of-two row lengths are aligned.

#ifndef OPENAPI_LINALG_MATRIX_H_
#define OPENAPI_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/aligned_alloc.h"
#include "linalg/vector_ops.h"
#include "util/check.h"

namespace openapi::linalg {

class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The n x n identity.
  static Matrix Identity(size_t n);

  /// Builds a matrix whose i-th row is rows[i]. All rows must have equal
  /// length; `rows` must be non-empty.
  static Matrix FromRows(const std::vector<Vec>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reshapes to rows x cols, reusing the existing allocation whenever it
  /// is large enough (the workspace-reuse primitive of the solver's
  /// shrink loop). Element CONTENTS are unspecified afterwards — callers
  /// are expected to overwrite every entry.
  void Resize(size_t rows, size_t cols);

  double& operator()(size_t r, size_t c) {
    OPENAPI_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    OPENAPI_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major contiguous storage).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies of a row / column.
  Vec Row(size_t r) const;
  Vec Col(size_t c) const;

  void SetRow(size_t r, const Vec& values);
  void SetCol(size_t c, const Vec& values);

  /// Matrix-vector product (rows x cols) * (cols) -> (rows).
  Vec Multiply(const Vec& x) const;

  /// Matrix-vector product written into *out (resized to rows()); no
  /// allocation when out's capacity suffices. out must not alias x.
  void Multiply(const Vec& x, Vec* out) const;

  /// Transposed matrix-vector product A^T x: (cols) result.
  Vec MultiplyTransposed(const Vec& x) const;

  /// Matrix-matrix product; this->cols() must equal other.rows().
  /// Cache-blocked (i-k-j inside square tiles) so large products — batched
  /// forward passes, per-region affine-map composition — stream each tile
  /// of B through cache once per tile of A instead of once per row.
  Matrix Multiply(const Matrix& other) const;

  /// A * B^T with B given row-major: this (m x k) * other^T (k x n) for
  /// other (n x k). Every output entry is a dot product of two contiguous
  /// rows, making this the cache-friendly kernel for batched layer
  /// forwards Z = X W^T (X rows = samples, W rows = output units). The
  /// inner dot accumulates left to right in a single scalar, bit-matching
  /// Multiply(const Vec&) on each row — the batch/single parity contract.
  Matrix MultiplyABt(const Matrix& other) const;

  /// Adds `row` to every row in place (bias broadcast; row.size() == cols).
  void AddRowInPlace(const Vec& row);

  /// A^T (cols x rows).
  Matrix Transposed() const;

  /// Element-wise sum / difference; shapes must match.
  Matrix Add(const Matrix& other) const;
  Matrix Sub(const Matrix& other) const;

  /// Scales every element by s in place.
  void ScaleInPlace(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij|.
  double MaxAbs() const;

  /// True iff every entry is finite.
  bool AllFinite() const;

  /// Flat row-major data access (for serialization and tests). The
  /// buffer is a std::vector with a 64-byte-aligned allocator; element
  /// access and iteration are identical to std::vector<double>.
  const AlignedBuffer& data() const { return data_; }
  AlignedBuffer& mutable_data() { return data_; }

  bool operator==(const Matrix& other) const = default;

 private:
  size_t rows_;
  size_t cols_;
  AlignedBuffer data_;
};

}  // namespace openapi::linalg

#endif  // OPENAPI_LINALG_MATRIX_H_
