#include "lmt/lmt.h"

#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace openapi::lmt {

LogisticModelTree LogisticModelTree::Fit(const data::Dataset& train,
                                         const LmtConfig& config) {
  OPENAPI_CHECK(!train.empty());
  LogisticModelTree tree(train.dim(), train.num_classes());
  std::vector<size_t> all(train.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.BuildNode(train, all, /*depth=*/0, config);
  tree.FinalizeRouting();
  return tree;
}

void LogisticModelTree::FinalizeRouting() {
  const size_t n = nodes_.size();
  route_feature_.resize(n);
  route_threshold_.resize(n);
  route_left_.resize(n);
  route_right_.resize(n);
  node_leaf_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (node.is_leaf) {
      // Self-loop: x[0] <= +inf always routes "left" back to the leaf, so
      // parked samples stay put through the remaining level passes with
      // no is-leaf branch in the routing loop.
      route_feature_[i] = 0;
      route_threshold_[i] = std::numeric_limits<double>::infinity();
      route_left_[i] = static_cast<uint32_t>(i);
      route_right_[i] = static_cast<uint32_t>(i);
      node_leaf_[i] = node.leaf_index;
    } else {
      route_feature_[i] = static_cast<uint32_t>(node.feature);
      route_threshold_[i] = node.threshold;
      route_left_[i] = static_cast<uint32_t>(node.left);
      route_right_[i] = static_cast<uint32_t>(node.right);
      node_leaf_[i] = std::numeric_limits<size_t>::max();
    }
  }
}

void LogisticModelTree::RouteRange(const std::vector<Vec>& xs, size_t begin,
                                   size_t end, size_t* leaf_of) const {
  const size_t count = end - begin;
  constexpr size_t kNotLeaf = std::numeric_limits<size_t>::max();
  // Level-order with active-list compaction: every pass advances each
  // still-routing sample one tree level, streaming the SoA arrays
  // instead of chasing one sample's pointer chain to the bottom before
  // starting the next; samples that reach their leaf drop out of the
  // active list so unbalanced trees don't re-touch parked samples. The
  // comparison is exactly LeafIndexAt's (x[feature] <= threshold), so
  // assignments are identical per sample.
  std::vector<uint32_t> current(count, 0);
  std::vector<uint32_t> active;
  if (node_leaf_[0] == kNotLeaf) {
    active.resize(count);
    for (size_t i = 0; i < count; ++i) active[i] = static_cast<uint32_t>(i);
  }
  for (size_t level = 0; level < depth_ && !active.empty(); ++level) {
    size_t kept = 0;
    for (const uint32_t i : active) {
      const uint32_t node = current[i];
      const uint32_t next =
          xs[begin + i][route_feature_[node]] <= route_threshold_[node]
              ? route_left_[node]
              : route_right_[node];
      current[i] = next;
      if (node_leaf_[next] == kNotLeaf) active[kept++] = i;
    }
    active.resize(kept);
  }
  for (size_t i = 0; i < count; ++i) {
    size_t node = current[i];
    // depth_ passes suffice for any path; the walk below is a guard for
    // trees whose serialized depth understates the true height.
    while (node_leaf_[node] == kNotLeaf) {
      node = xs[begin + i][route_feature_[node]] <= route_threshold_[node]
                 ? route_left_[node]
                 : route_right_[node];
    }
    leaf_of[i] = node_leaf_[node];
  }
}

std::vector<size_t> LogisticModelTree::LeafIndicesBatch(
    const std::vector<Vec>& xs) const {
  for (const Vec& x : xs) OPENAPI_CHECK_EQ(x.size(), dim_);
  std::vector<size_t> leaf_of(xs.size());
  if (!xs.empty()) RouteRange(xs, 0, xs.size(), leaf_of.data());
  return leaf_of;
}

size_t LogisticModelTree::BuildNode(const data::Dataset& train,
                                    const std::vector<size_t>& indices,
                                    size_t depth, const LmtConfig& config) {
  depth_ = std::max(depth_, depth);
  const size_t node_index = nodes_.size();
  nodes_.emplace_back();

  // Train this node's logistic classifier; it becomes the leaf model if we
  // stop here (paper's stopping rule needs its accuracy either way).
  LogisticRegression classifier(train.dim(), train.num_classes());
  classifier.Fit(train, indices, config.leaf_config);
  const double accuracy = classifier.Accuracy(train, indices);

  auto make_leaf = [&]() {
    Node& node = nodes_[node_index];
    node.is_leaf = true;
    node.leaf_index = leaves_.size();
    leaves_.push_back(std::move(classifier));
    return node_index;
  };

  if (indices.size() < config.min_split_size ||
      accuracy > config.accuracy_threshold || depth >= config.max_depth) {
    return make_leaf();
  }

  SplitConfig split_config = config.split_config;
  // Both children must remain viable logistic-regression training sets.
  split_config.min_leaf_size =
      std::max(split_config.min_leaf_size, config.min_split_size / 2);
  std::optional<Split> split = FindBestSplit(train, indices, split_config);
  if (!split) return make_leaf();

  std::vector<size_t> left_idx, right_idx;
  ApplySplit(train, indices, *split, &left_idx, &right_idx);
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  // Recurse; children may reallocate nodes_, so write fields afterwards
  // through the index rather than a stale reference.
  size_t left_child = BuildNode(train, left_idx, depth + 1, config);
  size_t right_child = BuildNode(train, right_idx, depth + 1, config);
  Node& node = nodes_[node_index];
  node.is_leaf = false;
  node.feature = split->feature;
  node.threshold = split->threshold;
  node.left = left_child;
  node.right = right_child;
  return node_index;
}

size_t LogisticModelTree::LeafIndexAt(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim_);
  OPENAPI_CHECK(!nodes_.empty());
  size_t current = 0;
  while (!nodes_[current].is_leaf) {
    const Node& node = nodes_[current];
    current = x[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[current].leaf_index;
}

Vec LogisticModelTree::Predict(const Vec& x) const {
  return leaves_[LeafIndexAt(x)].Predict(x);
}

std::vector<Vec> LogisticModelTree::PredictBatch(
    const std::vector<Vec>& xs) const {
  if (xs.empty()) return {};
  std::vector<Vec> out(xs.size());
  // Per row block: level-order routing, then one GEMM per populated leaf
  // over the block's members. The Multiply i-k-j kernel accumulates over
  // features in the same order as MultiplyTransposed in
  // LogisticRegression::Predict, and each GEMM row depends only on its
  // own sample, so every row is bit-identical to the single-sample path
  // regardless of how the batch splits across the pool.
  api::ParallelForwardRowBlocks(xs.size(), [&](size_t begin, size_t end) {
    std::vector<size_t> leaf_of(end - begin);
    RouteRange(xs, begin, end, leaf_of.data());
    std::vector<std::vector<size_t>> members(leaves_.size());
    for (size_t i = begin; i < end; ++i) {
      members[leaf_of[i - begin]].push_back(i);
    }
    for (size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
      if (members[leaf].empty()) continue;
      const LogisticRegression& clf = leaves_[leaf];
      linalg::Matrix group(members[leaf].size(), dim_);
      for (size_t r = 0; r < members[leaf].size(); ++r) {
        group.SetRow(r, xs[members[leaf][r]]);
      }
      linalg::Matrix logits = group.Multiply(clf.weights());  // n_leaf x C
      logits.AddRowInPlace(clf.bias());
      for (size_t r = 0; r < members[leaf].size(); ++r) {
        Vec& dst = out[members[leaf][r]];
        dst.resize(logits.cols());
        linalg::SoftmaxInto(logits.RowPtr(r), logits.cols(), dst.data());
      }
    }
  });
  return out;
}

uint64_t LogisticModelTree::RegionId(const Vec& x) const {
  return static_cast<uint64_t>(LeafIndexAt(x));
}

api::LocalLinearModel LogisticModelTree::LocalModelAt(const Vec& x) const {
  const LogisticRegression& leaf = leaves_[LeafIndexAt(x)];
  return api::LocalLinearModel{leaf.weights(), leaf.bias()};
}

const LogisticRegression& LogisticModelTree::LeafClassifier(
    size_t leaf_index) const {
  OPENAPI_CHECK_LT(leaf_index, leaves_.size());
  return leaves_[leaf_index];
}

Status LogisticModelTree::Save(const std::string& path) const {
  // Serialize into memory, hand the bytes to the confined I/O module
  // (util/file_io.h is the project's only raw file-I/O site).
  std::ostringstream out;
  out << "lmt v1\n"
      << dim_ << " " << num_classes_ << " " << nodes_.size() << " "
      << leaves_.size() << " " << depth_ << "\n";
  for (const Node& node : nodes_) {
    out << (node.is_leaf ? 1 : 0) << " " << node.feature << " "
        << util::StrFormat("%.17g", node.threshold) << " " << node.left
        << " " << node.right << " " << node.leaf_index << "\n";
  }
  for (const LogisticRegression& leaf : leaves_) {
    for (double w : leaf.weights().data()) {
      out << util::StrFormat("%.17g\n", w);
    }
    for (double b : leaf.bias()) {
      out << util::StrFormat("%.17g\n", b);
    }
  }
  return util::WriteStringToFile(path, out.str());
}

Result<LogisticModelTree> LogisticModelTree::Load(const std::string& path) {
  Result<std::string> content = util::ReadFileToString(path);
  if (!content.ok()) {
    return Status::IoError("cannot open " + path);
  }
  std::istringstream in(*content);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "lmt" || version != "v1") {
    return Status::IoError(path + ": not an lmt v1 file");
  }
  size_t dim = 0, num_classes = 0, num_nodes = 0, num_leaves = 0,
         depth = 0;
  in >> dim >> num_classes >> num_nodes >> num_leaves >> depth;
  if (!in.good() || dim == 0 || num_classes < 2 || num_nodes == 0 ||
      num_leaves == 0 || num_nodes > 1u << 24) {
    return Status::IoError(path + ": bad header");
  }
  LogisticModelTree tree(dim, num_classes);
  tree.depth_ = depth;
  tree.nodes_.resize(num_nodes);
  for (Node& node : tree.nodes_) {
    int is_leaf = 0;
    in >> is_leaf >> node.feature >> node.threshold >> node.left >>
        node.right >> node.leaf_index;
    node.is_leaf = is_leaf != 0;
    if (in.fail()) return Status::IoError(path + ": truncated nodes");
  }
  tree.leaves_.reserve(num_leaves);
  for (size_t l = 0; l < num_leaves; ++l) {
    LogisticRegression leaf(dim, num_classes);
    for (double& w : leaf.mutable_weights().mutable_data()) in >> w;
    for (double& b : leaf.mutable_bias()) in >> b;
    if (in.fail()) return Status::IoError(path + ": truncated leaves");
    tree.leaves_.push_back(std::move(leaf));
  }
  // Structural validation: child indices and leaf indices must be in
  // range, and leaves referenced by leaf nodes must exist.
  for (const Node& node : tree.nodes_) {
    if (node.is_leaf) {
      if (node.leaf_index >= tree.leaves_.size()) {
        return Status::IoError(path + ": leaf index out of range");
      }
    } else if (node.left >= tree.nodes_.size() ||
               node.right >= tree.nodes_.size() || node.feature >= dim) {
      return Status::IoError(path + ": node reference out of range");
    }
  }
  tree.FinalizeRouting();
  return tree;
}

}  // namespace openapi::lmt
