#include "lmt/split.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace openapi::lmt {

namespace {

double EntropyFromCounts(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  const double inv_total = 1.0 / static_cast<double>(total);
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) * inv_total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double Entropy(const data::Dataset& dataset,
               const std::vector<size_t>& indices) {
  std::vector<size_t> counts(dataset.num_classes(), 0);
  for (size_t i : indices) ++counts[dataset.label(i)];
  return EntropyFromCounts(counts, indices.size());
}

std::optional<Split> FindBestSplit(const data::Dataset& dataset,
                                   const std::vector<size_t>& indices,
                                   const SplitConfig& config) {
  const size_t n = indices.size();
  if (n < 2 * config.min_leaf_size) return std::nullopt;

  const double parent_entropy = Entropy(dataset, indices);
  if (parent_entropy == 0.0) return std::nullopt;  // pure node

  std::optional<Split> best;

  // Reused per-feature scratch: (value, label) pairs sorted by value.
  std::vector<std::pair<double, size_t>> sorted(n);
  const size_t num_classes = dataset.num_classes();
  std::vector<size_t> left_counts(num_classes);
  std::vector<size_t> right_counts(num_classes);

  for (size_t feature = 0; feature < dataset.dim(); ++feature) {
    for (size_t i = 0; i < n; ++i) {
      size_t idx = indices[i];
      sorted[i] = {dataset.x(idx)[feature], dataset.label(idx)};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    // Candidate boundaries: positions where the value changes and the
    // labels on either side differ (C4.5's boundary-point theorem says
    // optimal thresholds lie there). Capped at max_thresholds by striding.
    std::vector<size_t> boundaries;
    for (size_t i = 0; i + 1 < n; ++i) {
      if (sorted[i].first != sorted[i + 1].first &&
          sorted[i].second != sorted[i + 1].second) {
        boundaries.push_back(i);
      }
    }
    if (boundaries.empty()) continue;
    size_t stride = std::max<size_t>(
        1, boundaries.size() / std::max<size_t>(1, config.max_thresholds));

    // Sweep: maintain class counts left/right of the boundary.
    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::fill(right_counts.begin(), right_counts.end(), 0);
    for (size_t i = 0; i < n; ++i) ++right_counts[sorted[i].second];
    size_t cursor = 0;  // first element not yet moved to the left side

    for (size_t bi = 0; bi < boundaries.size(); bi += stride) {
      size_t boundary = boundaries[bi];
      while (cursor <= boundary) {
        ++left_counts[sorted[cursor].second];
        --right_counts[sorted[cursor].second];
        ++cursor;
      }
      size_t left_n = cursor;
      size_t right_n = n - cursor;
      if (left_n < config.min_leaf_size || right_n < config.min_leaf_size) {
        continue;
      }
      double h_left = EntropyFromCounts(left_counts, left_n);
      double h_right = EntropyFromCounts(right_counts, right_n);
      double p_left = static_cast<double>(left_n) / static_cast<double>(n);
      double p_right = 1.0 - p_left;
      double gain = parent_entropy - p_left * h_left - p_right * h_right;
      // Gain ratio: normalize by the split's own entropy.
      double split_info =
          -(p_left * std::log2(p_left) + p_right * std::log2(p_right));
      if (split_info <= 0.0) continue;
      double ratio = gain / split_info;
      if (ratio < config.min_gain_ratio) continue;
      if (!best || ratio > best->gain_ratio) {
        Split s;
        s.feature = feature;
        s.threshold =
            0.5 * (sorted[boundary].first + sorted[boundary + 1].first);
        s.gain_ratio = ratio;
        s.left_count = left_n;
        s.right_count = right_n;
        best = s;
      }
    }
  }
  return best;
}

void ApplySplit(const data::Dataset& dataset,
                const std::vector<size_t>& indices, const Split& split,
                std::vector<size_t>* left, std::vector<size_t>* right) {
  left->clear();
  right->clear();
  for (size_t i : indices) {
    if (dataset.x(i)[split.feature] <= split.threshold) {
      left->push_back(i);
    } else {
      right->push_back(i);
    }
  }
}

}  // namespace openapi::lmt
