// Logistic Model Tree (Landwehr et al. [24]) as used in the paper's
// evaluation: a C4.5 decision tree whose every leaf carries a sparse
// multinomial logistic regression classifier.
//
// An LMT is a piecewise linear model in the paper's exact sense: the tree
// routes an input to one leaf, and that leaf's (axis-aligned) cell is a
// locally linear region whose classifier is softmax(W^T x + b). Hence the
// leaf index is the region id and the leaf weights are the white-box
// ground truth.
//
// Stopping criteria follow Sec. V: a node is not split further if it holds
// fewer than `min_split_size` (100) training instances or its logistic
// classifier already exceeds `accuracy_threshold` (99%) on the node's data.

#ifndef OPENAPI_LMT_LMT_H_
#define OPENAPI_LMT_LMT_H_

#include <memory>
#include <string>
#include <vector>

#include "api/plm.h"
#include "data/dataset.h"
#include "lmt/logistic_regression.h"
#include "lmt/split.h"

namespace openapi::lmt {

struct LmtConfig {
  size_t min_split_size = 100;       // paper: nodes under 100 become leaves
  double accuracy_threshold = 0.99;  // paper: stop when leaf acc > 99%
  size_t max_depth = 8;              // safety bound on tree depth
  LogisticRegressionConfig leaf_config;
  SplitConfig split_config;
};

class LogisticModelTree : public api::Plm, public api::PlmOracle {
 public:
  /// Trains an LMT on `train`.
  static LogisticModelTree Fit(const data::Dataset& train,
                               const LmtConfig& config);

  // --- api::Plm ---
  size_t dim() const override { return dim_; }
  size_t num_classes() const override { return num_classes_; }
  Vec Predict(const Vec& x) const override;
  /// Batched prediction: routes every sample to its leaf, then evaluates
  /// each leaf's classifier over its group with one matrix-matrix product.
  /// Bit-matches per-sample Predict.
  std::vector<Vec> PredictBatch(const std::vector<Vec>& xs) const override;

  // --- api::PlmOracle ---
  /// Region id = leaf index.
  uint64_t RegionId(const Vec& x) const override;
  api::LocalLinearModel LocalModelAt(const Vec& x) const override;

  /// Index of the leaf whose cell contains x.
  size_t LeafIndexAt(const Vec& x) const;

  /// The leaf's logistic classifier (for inspection and tests).
  const LogisticRegression& LeafClassifier(size_t leaf_index) const;

  size_t num_leaves() const { return leaves_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t depth() const { return depth_; }

  /// Save/Load a trained tree (text format; doubles serialized as %.17g so
  /// round-trips are bit-exact).
  Status Save(const std::string& path) const;
  static Result<LogisticModelTree> Load(const std::string& path);

 private:
  // Flat node representation: internal nodes route, leaves classify.
  struct Node {
    bool is_leaf = false;
    // Internal:
    size_t feature = 0;
    double threshold = 0.0;
    size_t left = 0;   // node index
    size_t right = 0;  // node index
    // Leaf:
    size_t leaf_index = 0;  // into leaves_
  };

  LogisticModelTree(size_t dim, size_t num_classes)
      : dim_(dim), num_classes_(num_classes) {}

  size_t BuildNode(const data::Dataset& train,
                   const std::vector<size_t>& indices, size_t depth,
                   const LmtConfig& config);

  size_t dim_;
  size_t num_classes_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<LogisticRegression> leaves_;
  size_t depth_ = 0;
};

}  // namespace openapi::lmt

#endif  // OPENAPI_LMT_LMT_H_
