// Logistic Model Tree (Landwehr et al. [24]) as used in the paper's
// evaluation: a C4.5 decision tree whose every leaf carries a sparse
// multinomial logistic regression classifier.
//
// An LMT is a piecewise linear model in the paper's exact sense: the tree
// routes an input to one leaf, and that leaf's (axis-aligned) cell is a
// locally linear region whose classifier is softmax(W^T x + b). Hence the
// leaf index is the region id and the leaf weights are the white-box
// ground truth.
//
// Stopping criteria follow Sec. V: a node is not split further if it holds
// fewer than `min_split_size` (100) training instances or its logistic
// classifier already exceeds `accuracy_threshold` (99%) on the node's data.

#ifndef OPENAPI_LMT_LMT_H_
#define OPENAPI_LMT_LMT_H_

#include <memory>
#include <string>
#include <vector>

#include "api/plm.h"
#include "data/dataset.h"
#include "lmt/logistic_regression.h"
#include "lmt/split.h"

namespace openapi::lmt {

struct LmtConfig {
  size_t min_split_size = 100;       // paper: nodes under 100 become leaves
  double accuracy_threshold = 0.99;  // paper: stop when leaf acc > 99%
  size_t max_depth = 8;              // safety bound on tree depth
  LogisticRegressionConfig leaf_config;
  SplitConfig split_config;
};

class LogisticModelTree : public api::Plm, public api::PlmOracle {
 public:
  /// Trains an LMT on `train`.
  static LogisticModelTree Fit(const data::Dataset& train,
                               const LmtConfig& config);

  // --- api::Plm ---
  size_t dim() const override { return dim_; }
  size_t num_classes() const override { return num_classes_; }
  Vec Predict(const Vec& x) const override;
  /// Batched prediction: routes every sample to its leaf with the
  /// level-order SoA pass (LeafIndicesBatch), then evaluates each leaf's
  /// classifier over its group with one matrix-matrix product; large
  /// batches split into row blocks on the shared pool. Bit-matches
  /// per-sample Predict.
  std::vector<Vec> PredictBatch(const std::vector<Vec>& xs) const override;

  // --- api::PlmOracle ---
  /// Region id = leaf index.
  uint64_t RegionId(const Vec& x) const override;
  api::LocalLinearModel LocalModelAt(const Vec& x) const override;

  /// Index of the leaf whose cell contains x (single-sample pointer
  /// walk — the parity anchor for LeafIndicesBatch).
  size_t LeafIndexAt(const Vec& x) const;

  /// Leaf indices for a whole batch, routed one tree LEVEL at a time over
  /// flat SoA arrays (feature / threshold / child indices): each pass
  /// advances every still-routing sample one level, streaming the arrays
  /// instead of chasing Node structs per sample. Leaves self-loop, so
  /// depth() passes land every sample on its leaf. Identical to
  /// LeafIndexAt per sample.
  std::vector<size_t> LeafIndicesBatch(const std::vector<Vec>& xs) const;

  /// The leaf's logistic classifier (for inspection and tests).
  const LogisticRegression& LeafClassifier(size_t leaf_index) const;

  size_t num_leaves() const { return leaves_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t depth() const { return depth_; }

  /// Save/Load a trained tree (text format; doubles serialized as %.17g so
  /// round-trips are bit-exact).
  Status Save(const std::string& path) const;
  static Result<LogisticModelTree> Load(const std::string& path);

 private:
  // Flat node representation: internal nodes route, leaves classify.
  struct Node {
    bool is_leaf = false;
    // Internal:
    size_t feature = 0;
    double threshold = 0.0;
    size_t left = 0;   // node index
    size_t right = 0;  // node index
    // Leaf:
    size_t leaf_index = 0;  // into leaves_
  };

  LogisticModelTree(size_t dim, size_t num_classes)
      : dim_(dim), num_classes_(num_classes) {}

  size_t BuildNode(const data::Dataset& train,
                   const std::vector<size_t>& indices, size_t depth,
                   const LmtConfig& config);

  /// Flattens nodes_ into the routing SoA arrays below. Called once after
  /// Fit / Load; the arrays are derived state and are not serialized.
  void FinalizeRouting();

  /// Routes xs[begin..end) to leaf indices in leaf_of[0..end-begin).
  void RouteRange(const std::vector<Vec>& xs, size_t begin, size_t end,
                  size_t* leaf_of) const;

  size_t dim_;
  size_t num_classes_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<LogisticRegression> leaves_;
  size_t depth_ = 0;

  // Routing SoA (structure-of-arrays mirror of nodes_, level-order batch
  // routing): for internal node i, sample goes to route_left_[i] iff
  // x[route_feature_[i]] <= route_threshold_[i]. Leaves self-loop
  // (left == right == i, threshold == +inf) so a routed sample parks on
  // its leaf while other samples finish; node_leaf_[i] maps a leaf node
  // to its leaves_ index (SIZE_MAX for internal nodes).
  std::vector<uint32_t> route_feature_;
  std::vector<double> route_threshold_;
  std::vector<uint32_t> route_left_;
  std::vector<uint32_t> route_right_;
  std::vector<size_t> node_leaf_;
};

}  // namespace openapi::lmt

#endif  // OPENAPI_LMT_LMT_H_
