#include "lmt/logistic_regression.h"

#include <cmath>

#include "util/check.h"

namespace openapi::lmt {

namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace

LogisticRegression::LogisticRegression(size_t dim, size_t num_classes)
    : weights_(dim, num_classes), bias_(num_classes, 0.0) {
  OPENAPI_CHECK_GT(dim, 0u);
  OPENAPI_CHECK_GT(num_classes, 1u);
}

void LogisticRegression::Fit(const data::Dataset& dataset,
                             const std::vector<size_t>& indices,
                             const LogisticRegressionConfig& config) {
  OPENAPI_CHECK_EQ(dataset.dim(), dim());
  OPENAPI_CHECK_EQ(dataset.num_classes(), num_classes());
  const std::vector<size_t> idx =
      indices.empty() ? AllIndices(dataset.size()) : indices;
  OPENAPI_CHECK(!idx.empty());

  const size_t d = dim();
  const size_t c_count = num_classes();
  const double inv_n = 1.0 / static_cast<double>(idx.size());

  // Reset to the zero model so Fit is deterministic and idempotent.
  for (double& w : weights_.mutable_data()) w = 0.0;
  for (double& b : bias_) b = 0.0;

  double prev_loss = std::numeric_limits<double>::infinity();
  Matrix grad_w(d, c_count);
  Vec grad_b(c_count, 0.0);

  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    for (double& g : grad_w.mutable_data()) g = 0.0;
    for (double& g : grad_b) g = 0.0;
    double loss = 0.0;

    for (size_t i : idx) {
      const Vec& x = dataset.x(i);
      const size_t label = dataset.label(i);
      Vec logits = weights_.MultiplyTransposed(x);
      for (size_t c = 0; c < c_count; ++c) logits[c] += bias_[c];
      Vec log_probs = linalg::LogSoftmax(logits);
      loss += -log_probs[label];
      for (size_t c = 0; c < c_count; ++c) {
        double delta = std::exp(log_probs[c]) - (c == label ? 1.0 : 0.0);
        grad_b[c] += delta;
        if (delta == 0.0) continue;
        for (size_t j = 0; j < d; ++j) {
          if (x[j] != 0.0) grad_w(j, c) += delta * x[j];
        }
      }
    }
    loss *= inv_n;

    // Gradient step followed by the L1 proximal (soft-threshold) operator.
    const double lr = config.learning_rate;
    const double shrink = lr * config.l1_penalty;
    auto& w = weights_.mutable_data();
    const auto& gw = grad_w.data();
    for (size_t i = 0; i < w.size(); ++i) {
      double updated = w[i] - lr * gw[i] * inv_n;
      if (updated > shrink) {
        w[i] = updated - shrink;
      } else if (updated < -shrink) {
        w[i] = updated + shrink;
      } else {
        w[i] = 0.0;
      }
    }
    for (size_t c = 0; c < c_count; ++c) {
      bias_[c] -= lr * grad_b[c] * inv_n;  // bias is not penalized
    }

    if (prev_loss - loss < config.tolerance && iter > 10) break;
    prev_loss = loss;
  }
}

Vec LogisticRegression::Predict(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  Vec logits = weights_.MultiplyTransposed(x);
  for (size_t c = 0; c < logits.size(); ++c) logits[c] += bias_[c];
  return linalg::Softmax(logits);
}

double LogisticRegression::Accuracy(
    const data::Dataset& dataset, const std::vector<size_t>& indices) const {
  const std::vector<size_t> idx =
      indices.empty() ? AllIndices(dataset.size()) : indices;
  if (idx.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i : idx) {
    if (linalg::ArgMax(Predict(dataset.x(i))) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

double LogisticRegression::ZeroFraction() const {
  size_t zeros = 0;
  for (double w : weights_.data()) {
    if (w == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) /
         static_cast<double>(weights_.data().size());
}

}  // namespace openapi::lmt
