// C4.5-style split selection for the logistic model tree.
//
// Following the paper ("we use the standard C4.5 algorithm to select the
// pivot feature for each node"), candidate splits are (feature, threshold)
// pairs on continuous features; the winner maximizes the information gain
// ratio. Thresholds are midpoints between adjacent distinct feature values
// whose class labels differ — the classic C4.5 candidate set.

#ifndef OPENAPI_LMT_SPLIT_H_
#define OPENAPI_LMT_SPLIT_H_

#include <optional>
#include <vector>

#include "data/dataset.h"

namespace openapi::lmt {

struct Split {
  size_t feature = 0;
  double threshold = 0.0;  // x[feature] <= threshold goes left
  double gain_ratio = 0.0;
  size_t left_count = 0;
  size_t right_count = 0;
};

struct SplitConfig {
  size_t min_leaf_size = 1;       // both sides must have at least this many
  double min_gain_ratio = 1e-6;   // reject splits below this
  size_t max_thresholds = 32;     // cap candidate thresholds per feature
};

/// Shannon entropy (bits) of the labels selected by `indices`.
double Entropy(const data::Dataset& dataset,
               const std::vector<size_t>& indices);

/// Best C4.5 split over all features for the node given by `indices`, or
/// nullopt when no admissible split exists (pure node, constant features,
/// or min_leaf_size unsatisfiable).
std::optional<Split> FindBestSplit(const data::Dataset& dataset,
                                   const std::vector<size_t>& indices,
                                   const SplitConfig& config);

/// Partitions `indices` by the split predicate (<= goes left).
void ApplySplit(const data::Dataset& dataset,
                const std::vector<size_t>& indices, const Split& split,
                std::vector<size_t>* left, std::vector<size_t>* right);

}  // namespace openapi::lmt

#endif  // OPENAPI_LMT_SPLIT_H_
