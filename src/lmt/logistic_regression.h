// Multinomial (softmax) logistic regression with optional L1 sparsity.
//
// This is the leaf classifier of the Logistic Model Tree (the paper trains
// "a sparse multinomial logistic regression classifier ... on each leaf
// node"). Training is full-batch gradient descent with a proximal
// (soft-threshold) step for the L1 penalty, which produces genuinely sparse
// coefficients — the paper notes LMT decision features are visibly sparser
// than the PLNN's (Fig. 2).

#ifndef OPENAPI_LMT_LOGISTIC_REGRESSION_H_
#define OPENAPI_LMT_LOGISTIC_REGRESSION_H_

#include <vector>

#include "api/plm.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace openapi::lmt {

using linalg::Matrix;
using linalg::Vec;

struct LogisticRegressionConfig {
  size_t max_iters = 200;
  double learning_rate = 0.5;
  double l1_penalty = 1e-4;       // proximal soft-threshold strength
  double tolerance = 1e-6;        // stop when mean-loss improvement < tol
};

class LogisticRegression {
 public:
  LogisticRegression(size_t dim, size_t num_classes);

  /// Fits on the subset of `dataset` given by `indices` (all instances if
  /// `indices` is empty). Deterministic: starts from zero weights.
  void Fit(const data::Dataset& dataset, const std::vector<size_t>& indices,
           const LogisticRegressionConfig& config);

  /// softmax(W^T x + b).
  Vec Predict(const Vec& x) const;

  /// Accuracy on the subset of `dataset` given by `indices` (all if empty).
  double Accuracy(const data::Dataset& dataset,
                  const std::vector<size_t>& indices) const;

  size_t dim() const { return weights_.rows(); }
  size_t num_classes() const { return weights_.cols(); }

  /// Weights as d x C (column c = weight vector of class c) and bias.
  const Matrix& weights() const { return weights_; }
  const Vec& bias() const { return bias_; }
  Matrix& mutable_weights() { return weights_; }
  Vec& mutable_bias() { return bias_; }

  /// Fraction of exactly-zero weights (sparsity diagnostic).
  double ZeroFraction() const;

 private:
  Matrix weights_;  // d x C
  Vec bias_;        // C
};

}  // namespace openapi::lmt

#endif  // OPENAPI_LMT_LOGISTIC_REGRESSION_H_
