#include "nn/maxout.h"

namespace openapi::nn {

MaxoutLayer::MaxoutLayer(size_t in_dim, size_t out_dim, size_t pieces) {
  OPENAPI_CHECK_GT(pieces, 0u);
  pieces_.reserve(pieces);
  for (size_t k = 0; k < pieces; ++k) {
    pieces_.emplace_back(in_dim, out_dim);
  }
}

void MaxoutLayer::InitHe(util::Rng* rng) {
  for (Layer& piece : pieces_) piece.InitHe(rng);
}

Vec MaxoutLayer::Forward(const Vec& x) const {
  Vec best = pieces_[0].Forward(x);
  for (size_t k = 1; k < pieces_.size(); ++k) {
    Vec z = pieces_[k].Forward(x);
    for (size_t j = 0; j < best.size(); ++j) {
      best[j] = std::max(best[j], z[j]);
    }
  }
  return best;
}

Matrix MaxoutLayer::ForwardBatch(const Matrix& x) const {
  Matrix best = pieces_[0].ForwardBatch(x);
  for (size_t k = 1; k < pieces_.size(); ++k) {
    Matrix z = pieces_[k].ForwardBatch(x);
    double* b = best.mutable_data().data();
    const double* zp = z.data().data();
    for (size_t i = 0; i < best.size(); ++i) b[i] = std::max(b[i], zp[i]);
  }
  return best;
}

std::vector<size_t> MaxoutLayer::Selection(const Vec& x) const {
  std::vector<Vec> values;
  values.reserve(pieces_.size());
  for (const Layer& piece : pieces_) values.push_back(piece.Forward(x));
  std::vector<size_t> selection(out_dim(), 0);
  for (size_t j = 0; j < out_dim(); ++j) {
    for (size_t k = 1; k < pieces_.size(); ++k) {
      if (values[k][j] > values[selection[j]][j]) selection[j] = k;
    }
  }
  return selection;
}

MaxoutPlnn::MaxoutPlnn(const std::vector<size_t>& layer_sizes, size_t pieces,
                       util::Rng* rng)
    : output_(layer_sizes[layer_sizes.size() - 2], layer_sizes.back()) {
  OPENAPI_CHECK_GE(layer_sizes.size(), 2u);
  hidden_.reserve(layer_sizes.size() - 2);
  for (size_t i = 0; i + 2 < layer_sizes.size(); ++i) {
    hidden_.emplace_back(layer_sizes[i], layer_sizes[i + 1], pieces);
    hidden_.back().InitHe(rng);
  }
  output_.InitHe(rng);
}

size_t MaxoutPlnn::dim() const {
  return hidden_.empty() ? output_.in_dim() : hidden_[0].in_dim();
}

Vec MaxoutPlnn::Logits(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  Vec h = x;
  for (const MaxoutLayer& layer : hidden_) h = layer.Forward(h);
  return output_.Forward(h);
}

Vec MaxoutPlnn::Predict(const Vec& x) const {
  return linalg::Softmax(Logits(x));
}

Matrix MaxoutPlnn::LogitsBatch(const Matrix& x) const {
  OPENAPI_CHECK_EQ(x.cols(), dim());
  Matrix h = x;
  for (const MaxoutLayer& layer : hidden_) h = layer.ForwardBatch(h);
  return output_.ForwardBatch(h);
}

std::vector<Vec> MaxoutPlnn::PredictBatch(const std::vector<Vec>& xs) const {
  if (xs.empty()) return {};
  std::vector<Vec> out(xs.size());
  // Row-block split on the shared pool, same contract as Plnn: the piece
  // forwards and the element-wise max are row-local, so the split point
  // cannot change any row.
  api::ParallelForwardRowBlocks(xs.size(), [&](size_t begin, size_t end) {
    Matrix block(end - begin, dim());
    for (size_t i = begin; i < end; ++i) block.SetRow(i - begin, xs[i]);
    Matrix logits = LogitsBatch(block);
    for (size_t i = begin; i < end; ++i) {
      out[i].resize(logits.cols());
      linalg::SoftmaxInto(logits.RowPtr(i - begin), logits.cols(),
                          out[i].data());
    }
  });
  return out;
}

uint64_t MaxoutPlnn::RegionId(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  // FNV-1a over the winning-piece indices of all hidden units.
  uint64_t h = 1469598103934665603ULL;
  Vec activation = x;
  for (const MaxoutLayer& layer : hidden_) {
    for (size_t winner : layer.Selection(activation)) {
      h ^= static_cast<uint64_t>(winner) + 0x9e3779b97f4a7c15ULL;
      h *= 1099511628211ULL;
    }
    activation = layer.Forward(activation);
  }
  return h;
}

api::LocalLinearModel MaxoutPlnn::LocalModelAt(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  // With the winning pieces frozen, every hidden unit is one affine map;
  // compose them exactly as in the ReLU case, but selecting rows from the
  // winning piece instead of masking.
  linalg::Matrix a = linalg::Matrix::Identity(dim());
  Vec v(dim(), 0.0);  // running affine map: h = a * x + v
  Vec activation = x;
  for (const MaxoutLayer& layer : hidden_) {
    std::vector<size_t> selection = layer.Selection(activation);
    linalg::Matrix layer_w(layer.out_dim(), layer.in_dim());
    Vec layer_b(layer.out_dim());
    for (size_t j = 0; j < layer.out_dim(); ++j) {
      const Layer& winner = layer.piece(selection[j]);
      for (size_t i = 0; i < layer.in_dim(); ++i) {
        layer_w(j, i) = winner.weights()(j, i);
      }
      layer_b[j] = winner.bias()[j];
    }
    Vec new_v = layer_w.Multiply(v);
    for (size_t j = 0; j < new_v.size(); ++j) new_v[j] += layer_b[j];
    a = layer_w.Multiply(a);
    v = std::move(new_v);
    activation = layer.Forward(activation);
  }
  // Output head.
  Vec out_v = output_.weights().Multiply(v);
  for (size_t c = 0; c < out_v.size(); ++c) out_v[c] += output_.bias()[c];
  linalg::Matrix out_a = output_.weights().Multiply(a);
  return api::LocalLinearModel{out_a.Transposed(), std::move(out_v)};
}

}  // namespace openapi::nn
