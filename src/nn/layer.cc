#include "nn/layer.h"

#include <cmath>

namespace openapi::nn {

Layer::Layer(size_t in_dim, size_t out_dim)
    : weights_(out_dim, in_dim), bias_(out_dim, 0.0) {}

void Layer::InitHe(util::Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_dim()));
  for (double& w : weights_.mutable_data()) {
    w = rng->Gaussian(0.0, stddev);
  }
  for (double& b : bias_) b = 0.0;
}

Vec Layer::Forward(const Vec& x) const {
  Vec z = weights_.Multiply(x);
  for (size_t i = 0; i < z.size(); ++i) z[i] += bias_[i];
  return z;
}

Matrix Layer::ForwardBatch(const Matrix& x) const {
  Matrix z = x.MultiplyABt(weights_);
  z.AddRowInPlace(bias_);
  return z;
}

}  // namespace openapi::nn
