#include "nn/activation_pattern.h"

namespace openapi::nn {

void ActivationPattern::AppendLayer(
    const std::vector<double>& pre_activation) {
  bits_.reserve(bits_.size() + pre_activation.size());
  for (double z : pre_activation) bits_.push_back(z > 0.0);
}

size_t ActivationPattern::num_active() const {
  size_t count = 0;
  for (bool b : bits_) count += b ? 1 : 0;
  return count;
}

uint64_t ActivationPattern::Hash() const {
  // FNV-1a over the bits, one byte per bit for simplicity (patterns are a
  // few hundred bits; this is not a hot path).
  uint64_t h = 1469598103934665603ULL;
  for (bool b : bits_) {
    h ^= b ? 0x9eULL : 0x31ULL;
    h *= 1099511628211ULL;
  }
  // Mix in the length so patterns of different sizes never collide trivially.
  h ^= static_cast<uint64_t>(bits_.size());
  h *= 1099511628211ULL;
  return h;
}

}  // namespace openapi::nn
