#include "nn/plnn.h"

#include <sstream>

#include "util/file_io.h"
#include "util/string_util.h"

namespace openapi::nn {

Plnn::Plnn(const std::vector<size_t>& layer_sizes, util::Rng* rng) {
  OPENAPI_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t s : layer_sizes) OPENAPI_CHECK_GT(s, 0u);
  layers_.reserve(layer_sizes.size() - 1);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1]);
    layers_.back().InitHe(rng);
  }
}

Vec Plnn::Logits(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  Vec h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      for (double& v : h) v = v > 0.0 ? v : 0.0;  // ReLU
    }
  }
  return h;
}

Vec Plnn::Predict(const Vec& x) const { return linalg::Softmax(Logits(x)); }

Matrix Plnn::LogitsBatch(const Matrix& x) const {
  OPENAPI_CHECK_EQ(x.cols(), dim());
  Matrix h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].ForwardBatch(h);
    if (i + 1 < layers_.size()) {
      for (double& v : h.mutable_data()) v = v > 0.0 ? v : 0.0;  // ReLU
    }
  }
  return h;
}

std::vector<Vec> Plnn::PredictBatch(const std::vector<Vec>& xs) const {
  if (xs.empty()) return {};
  std::vector<Vec> out(xs.size());
  // Large batches split into row blocks across the shared pool; each
  // block is its own matrix forward. Every kernel in LogitsBatch computes
  // row i from row i alone, so the split point cannot change any row —
  // blocked, inline, and per-sample results are all bit-identical.
  api::ParallelForwardRowBlocks(xs.size(), [&](size_t begin, size_t end) {
    Matrix block(end - begin, dim());
    for (size_t i = begin; i < end; ++i) block.SetRow(i - begin, xs[i]);
    Matrix logits = LogitsBatch(block);
    for (size_t i = begin; i < end; ++i) {
      out[i].resize(logits.cols());
      linalg::SoftmaxInto(logits.RowPtr(i - begin), logits.cols(),
                          out[i].data());
    }
  });
  return out;
}

ActivationPattern Plnn::PatternAt(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  ActivationPattern pattern;
  Vec h = x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    pattern.AppendLayer(h);
    for (double& v : h) v = v > 0.0 ? v : 0.0;
  }
  return pattern;
}

uint64_t Plnn::RegionId(const Vec& x) const { return PatternAt(x).Hash(); }

api::LocalLinearModel Plnn::LocalModelAt(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  // With the ReLU masks m_i at x frozen, the network is the affine map
  //   logits = W_L M_{L-1} W_{L-1} ... M_1 W_1 x + (bias terms),
  // where M_i = diag(m_i). We accumulate the effective (A, v) with
  // logits = A x + v layer by layer, zeroing masked rows after each hidden
  // layer. This is exactly OpenBox's per-region classifier extraction.
  Vec h = x;
  Matrix a = layers_[0].weights();      // running A: (units of layer) x d
  Vec v = layers_[0].bias();            // running v
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    // Mask from this hidden layer's pre-activations.
    Vec z = layers_[i].Forward(h);
    for (size_t r = 0; r < z.size(); ++r) {
      if (z[r] <= 0.0) {
        double* row = a.RowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c) row[c] = 0.0;
        v[r] = 0.0;
      }
    }
    // Advance the running affine map through the next layer.
    const Layer& next = layers_[i + 1];
    a = next.weights().Multiply(a);
    Vec new_v = next.weights().Multiply(v);
    for (size_t r = 0; r < new_v.size(); ++r) new_v[r] += next.bias()[r];
    v = std::move(new_v);
    // Advance the concrete activation for the next mask.
    for (double& value : z) value = value > 0.0 ? value : 0.0;
    h = std::move(z);
  }
  // a is now C x d; the interface stores W as d x C (column c = W_c).
  return api::LocalLinearModel{a.Transposed(), std::move(v)};
}

std::vector<Vec> Plnn::ForwardAll(const Vec& x) const {
  OPENAPI_CHECK_EQ(x.size(), dim());
  std::vector<Vec> activations;
  activations.reserve(layers_.size() + 1);
  activations.push_back(x);
  Vec h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      for (double& v : h) v = v > 0.0 ? v : 0.0;
    }
    activations.push_back(h);
  }
  return activations;
}

size_t Plnn::num_hidden_units() const {
  size_t total = 0;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    total += layers_[i].out_dim();
  }
  return total;
}

Status Plnn::Save(const std::string& path) const {
  // Serialize into memory, hand the bytes to the confined I/O module
  // (util/file_io.h is the project's only raw file-I/O site).
  std::ostringstream out;
  out << "plnn v1\n" << layers_.size() << "\n";
  for (const Layer& layer : layers_) {
    out << layer.in_dim() << " " << layer.out_dim() << "\n";
    for (double w : layer.weights().data()) {
      out << util::StrFormat("%.17g\n", w);
    }
    for (double b : layer.bias()) {
      out << util::StrFormat("%.17g\n", b);
    }
  }
  return util::WriteStringToFile(path, out.str());
}

Result<Plnn> Plnn::Load(const std::string& path) {
  Result<std::string> content = util::ReadFileToString(path);
  if (!content.ok()) {
    return Status::IoError("cannot open " + path);
  }
  std::istringstream in(*content);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "plnn" || version != "v1") {
    return Status::IoError(path + ": not a plnn v1 file");
  }
  size_t num_layers = 0;
  in >> num_layers;
  if (!in.good() || num_layers == 0 || num_layers > 1024) {
    return Status::IoError(path + ": bad layer count");
  }
  std::vector<Layer> layers;
  layers.reserve(num_layers);
  for (size_t i = 0; i < num_layers; ++i) {
    size_t in_dim = 0, out_dim = 0;
    in >> in_dim >> out_dim;
    if (!in.good() || in_dim == 0 || out_dim == 0) {
      return Status::IoError(path + ": bad layer shape");
    }
    Layer layer(in_dim, out_dim);
    for (double& w : layer.mutable_weights().mutable_data()) {
      in >> w;
    }
    for (double& b : layer.mutable_bias()) {
      in >> b;
    }
    if (in.fail()) return Status::IoError(path + ": truncated weights");
    layers.push_back(std::move(layer));
  }
  // Validate the chain of shapes.
  for (size_t i = 0; i + 1 < layers.size(); ++i) {
    if (layers[i].out_dim() != layers[i + 1].in_dim()) {
      return Status::IoError(path + ": inconsistent layer shapes");
    }
  }
  return Plnn(std::move(layers));
}

}  // namespace openapi::nn
