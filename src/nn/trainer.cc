#include "nn/trainer.h"

#include <cmath>

#include "util/logging.h"

namespace openapi::nn {

Trainer::Trainer(Plnn* model, TrainerConfig config)
    : model_(model), config_(config) {
  OPENAPI_CHECK(model != nullptr);
  OPENAPI_CHECK_GT(config_.batch_size, 0u);
  moments_.reserve(model_->num_layers());
  for (size_t i = 0; i < model_->num_layers(); ++i) {
    const Layer& layer = model_->layer(i);
    moments_.push_back(Moments{
        linalg::Matrix(layer.out_dim(), layer.in_dim()),
        linalg::Matrix(layer.out_dim(), layer.in_dim()),
        Vec(layer.out_dim(), 0.0),
        Vec(layer.out_dim(), 0.0),
    });
  }
}

std::vector<EpochStats> Trainer::Fit(const data::Dataset& train,
                                     util::Rng* rng) {
  OPENAPI_CHECK_EQ(train.dim(), model_->dim());
  OPENAPI_CHECK(!train.empty());
  std::vector<EpochStats> stats;
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng->Shuffle(&order);
    double loss_sum = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      size_t end = std::min(start + config_.batch_size, order.size());
      std::vector<size_t> batch(order.begin() + start, order.begin() + end);
      loss_sum += Step(train, batch);
      ++num_batches;
    }
    EpochStats s;
    s.epoch = epoch;
    s.mean_loss = loss_sum / static_cast<double>(num_batches);
    s.train_accuracy = Accuracy(*model_, train);
    if (config_.verbose) {
      OPENAPI_LOG(Info) << "epoch " << epoch << " loss " << s.mean_loss
                        << " acc " << s.train_accuracy;
    }
    stats.push_back(s);
  }
  return stats;
}

double Trainer::Step(const data::Dataset& dataset,
                     const std::vector<size_t>& batch_indices) {
  OPENAPI_CHECK(!batch_indices.empty());
  const size_t num_layers = model_->num_layers();

  std::vector<linalg::Matrix> grad_w;
  std::vector<Vec> grad_b;
  grad_w.reserve(num_layers);
  grad_b.reserve(num_layers);
  for (size_t i = 0; i < num_layers; ++i) {
    const Layer& layer = model_->layer(i);
    grad_w.emplace_back(layer.out_dim(), layer.in_dim());
    grad_b.emplace_back(layer.out_dim(), 0.0);
  }

  double loss_sum = 0.0;
  for (size_t idx : batch_indices) {
    const Vec& x = dataset.x(idx);
    const size_t label = dataset.label(idx);

    std::vector<Vec> acts = model_->ForwardAll(x);
    const Vec& logits = acts.back();
    Vec log_probs = linalg::LogSoftmax(logits);
    loss_sum += -log_probs[label];

    // delta at the output: softmax(logits) - onehot(label).
    Vec delta(logits.size());
    for (size_t c = 0; c < logits.size(); ++c) {
      delta[c] = std::exp(log_probs[c]) - (c == label ? 1.0 : 0.0);
    }

    for (size_t li = num_layers; li-- > 0;) {
      const Vec& input = acts[li];  // post-activation input to layer li
      // Accumulate dL/dW = delta * input^T and dL/db = delta.
      linalg::Matrix& gw = grad_w[li];
      for (size_t r = 0; r < delta.size(); ++r) {
        double dr = delta[r];
        if (dr == 0.0) continue;
        double* row = gw.RowPtr(r);
        for (size_t c = 0; c < input.size(); ++c) row[c] += dr * input[c];
        grad_b[li][r] += dr;
      }
      if (li == 0) break;
      // Propagate: delta_prev = (W^T delta) * relu'(z_prev). Post-ReLU
      // activation > 0 iff pre-activation > 0, so acts[li] doubles as the
      // derivative mask.
      Vec prev = model_->layer(li).weights().MultiplyTransposed(delta);
      for (size_t c = 0; c < prev.size(); ++c) {
        if (acts[li][c] <= 0.0) prev[c] = 0.0;
      }
      delta = std::move(prev);
    }
  }

  ApplyGradients(grad_w, grad_b, batch_indices.size());
  return loss_sum / static_cast<double>(batch_indices.size());
}

void Trainer::ApplyGradients(const std::vector<linalg::Matrix>& grad_w,
                             const std::vector<Vec>& grad_b,
                             size_t batch_size) {
  ++step_count_;
  const double scale = 1.0 / static_cast<double>(batch_size);
  const double lr = config_.learning_rate;

  for (size_t li = 0; li < model_->num_layers(); ++li) {
    Layer& layer = model_->mutable_layer(li);
    auto& weights = layer.mutable_weights().mutable_data();
    const auto& gw = grad_w[li].data();
    auto& bias = layer.mutable_bias();
    const auto& gb = grad_b[li];

    if (!config_.use_adam) {
      for (size_t i = 0; i < weights.size(); ++i) {
        double g = gw[i] * scale + config_.weight_decay * weights[i];
        weights[i] -= lr * g;
      }
      for (size_t i = 0; i < bias.size(); ++i) {
        bias[i] -= lr * gb[i] * scale;
      }
      continue;
    }

    Moments& mom = moments_[li];
    auto& mw = mom.m_w.mutable_data();
    auto& vw = mom.v_w.mutable_data();
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double bias_corr1 =
        1.0 - std::pow(b1, static_cast<double>(step_count_));
    const double bias_corr2 =
        1.0 - std::pow(b2, static_cast<double>(step_count_));

    for (size_t i = 0; i < weights.size(); ++i) {
      double g = gw[i] * scale + config_.weight_decay * weights[i];
      mw[i] = b1 * mw[i] + (1.0 - b1) * g;
      vw[i] = b2 * vw[i] + (1.0 - b2) * g * g;
      double m_hat = mw[i] / bias_corr1;
      double v_hat = vw[i] / bias_corr2;
      weights[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
    for (size_t i = 0; i < bias.size(); ++i) {
      double g = gb[i] * scale;
      mom.m_b[i] = b1 * mom.m_b[i] + (1.0 - b1) * g;
      mom.v_b[i] = b2 * mom.v_b[i] + (1.0 - b2) * g * g;
      double m_hat = mom.m_b[i] / bias_corr1;
      double v_hat = mom.v_b[i] / bias_corr2;
      bias[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

double Accuracy(const api::Plm& model, const data::Dataset& dataset) {
  if (dataset.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    Vec y = model.Predict(dataset.x(i));
    if (linalg::ArgMax(y) == dataset.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double AverageCrossEntropy(const api::Plm& model,
                           const data::Dataset& dataset) {
  if (dataset.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    Vec y = model.Predict(dataset.x(i));
    double p = std::max(y[dataset.label(i)], 1e-300);
    sum += -std::log(p);
  }
  return sum / static_cast<double>(dataset.size());
}

}  // namespace openapi::nn
