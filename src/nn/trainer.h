// Mini-batch trainer for Plnn: softmax cross-entropy loss, backprop, and an
// Adam (or plain SGD) optimizer. This is the from-scratch substitute for
// the PyTorch training loop the paper uses to fit its PLNN targets.

#ifndef OPENAPI_NN_TRAINER_H_
#define OPENAPI_NN_TRAINER_H_

#include <vector>

#include "data/dataset.h"
#include "nn/plnn.h"
#include "util/rng.h"

namespace openapi::nn {

struct TrainerConfig {
  size_t epochs = 20;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  double beta1 = 0.9;          // Adam first-moment decay
  double beta2 = 0.999;        // Adam second-moment decay
  double epsilon = 1e-8;       // Adam denominator floor
  double weight_decay = 0.0;   // L2 penalty coefficient
  bool use_adam = true;        // false = plain SGD
  bool verbose = false;        // log per-epoch loss/accuracy
};

/// One epoch-level progress record.
struct EpochStats {
  size_t epoch = 0;
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

class Trainer {
 public:
  Trainer(Plnn* model, TrainerConfig config);

  /// Trains on `train`; returns per-epoch stats. `rng` drives batch
  /// shuffling only (weights were initialized at model construction).
  std::vector<EpochStats> Fit(const data::Dataset& train, util::Rng* rng);

  /// One optimizer step on a single mini-batch (exposed for tests).
  /// Returns the mean loss over the batch.
  double Step(const data::Dataset& dataset,
              const std::vector<size_t>& batch_indices);

 private:
  struct Moments {
    linalg::Matrix m_w, v_w;
    Vec m_b, v_b;
  };

  void ApplyGradients(const std::vector<linalg::Matrix>& grad_w,
                      const std::vector<Vec>& grad_b, size_t batch_size);

  Plnn* model_;
  TrainerConfig config_;
  std::vector<Moments> moments_;
  size_t step_count_ = 0;
};

/// Classification accuracy of any Plm on a dataset.
double Accuracy(const api::Plm& model, const data::Dataset& dataset);

/// Mean softmax cross-entropy of any Plm on a dataset.
double AverageCrossEntropy(const api::Plm& model,
                           const data::Dataset& dataset);

}  // namespace openapi::nn

#endif  // OPENAPI_NN_TRAINER_H_
