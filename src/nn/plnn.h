// Piecewise Linear Neural Network: a fully-connected ReLU network with a
// softmax output head — the PLNN family the paper interprets (Sec. V trains
// a 784-256-128-100-10 ReLU net; the layer sizes here are configurable).
//
// Plnn implements both the black-box `api::Plm` interface (Predict) and the
// white-box `api::PlmOracle` interface: the activation pattern of the
// hidden units identifies the locally linear region, and composing the
// masked layer maps yields the region's exact effective (W, b) — the same
// computation OpenBox [8] performs, used here as evaluation ground truth.

#ifndef OPENAPI_NN_PLNN_H_
#define OPENAPI_NN_PLNN_H_

#include <string>
#include <vector>

#include "api/plm.h"
#include "nn/activation_pattern.h"
#include "nn/layer.h"
#include "util/rng.h"
#include "util/status.h"

namespace openapi::nn {

class Plnn : public api::Plm, public api::PlmOracle {
 public:
  /// `layer_sizes` = {d, h_1, ..., h_L, C}; at least {d, C}. Weights are
  /// He-initialized from `rng`.
  Plnn(const std::vector<size_t>& layer_sizes, util::Rng* rng);

  // --- api::Plm ---
  size_t dim() const override { return layers_.front().in_dim(); }
  size_t num_classes() const override { return layers_.back().out_dim(); }
  Vec Predict(const Vec& x) const override;
  /// Batched forward built on matrix-matrix products; bit-matches the
  /// per-sample Predict row by row.
  std::vector<Vec> PredictBatch(const std::vector<Vec>& xs) const override;

  // --- api::PlmOracle ---
  uint64_t RegionId(const Vec& x) const override;
  api::LocalLinearModel LocalModelAt(const Vec& x) const override;

  /// Pre-softmax logits at x.
  Vec Logits(const Vec& x) const;

  /// Pre-softmax logits for a batch (one sample per row of x, n x d) as
  /// one matrix-matrix forward pass per layer; (n x C) result.
  Matrix LogitsBatch(const Matrix& x) const;

  /// The ReLU on/off pattern at x across all hidden layers.
  ActivationPattern PatternAt(const Vec& x) const;

  /// Forward pass keeping every layer's post-activation; used by the
  /// trainer's backprop. activations[0] = x, activations[i] = output of
  /// layer i-1 after ReLU (no ReLU on the last layer).
  std::vector<Vec> ForwardAll(const Vec& x) const;

  size_t num_layers() const { return layers_.size(); }
  const Layer& layer(size_t i) const { return layers_[i]; }
  Layer& mutable_layer(size_t i) { return layers_[i]; }

  /// Total number of hidden units (= activation pattern length).
  size_t num_hidden_units() const;

  /// Save/Load a trained network (simple text format, doubles as %.17g so
  /// round-trips are bit-exact).
  Status Save(const std::string& path) const;
  static Result<Plnn> Load(const std::string& path);

 private:
  explicit Plnn(std::vector<Layer> layers) : layers_(std::move(layers)) {}

  std::vector<Layer> layers_;
};

}  // namespace openapi::nn

#endif  // OPENAPI_NN_PLNN_H_
