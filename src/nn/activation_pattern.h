// ReLU activation patterns — the region ids of a piecewise linear network.
//
// Inside a ReLU network, the set of on/off decisions of all hidden units is
// constant across each locally linear region and changes exactly when a
// region boundary is crossed (Montufar et al., Chu et al. [8]). We encode
// the pattern as a bit vector and hash it to a 64-bit region id.

#ifndef OPENAPI_NN_ACTIVATION_PATTERN_H_
#define OPENAPI_NN_ACTIVATION_PATTERN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace openapi::nn {

class ActivationPattern {
 public:
  ActivationPattern() = default;

  /// Appends the on/off bits of one layer's pre-activations (z > 0).
  void AppendLayer(const std::vector<double>& pre_activation);

  size_t num_bits() const { return bits_.size(); }
  bool bit(size_t i) const { return bits_[i]; }

  /// Number of active (on) units.
  size_t num_active() const;

  /// 64-bit FNV-1a hash of the bit string; used as the region id.
  uint64_t Hash() const;

  bool operator==(const ActivationPattern& other) const = default;

 private:
  std::vector<bool> bits_;
};

}  // namespace openapi::nn

#endif  // OPENAPI_NN_ACTIVATION_PATTERN_H_
