// A fully-connected layer: z = W x + b.
//
// Weights are stored as an (out x in) matrix so a forward pass is one
// row-major matrix-vector product. Initialization is He-normal, the
// standard choice for ReLU networks (the paper's PLNN uses ReLU).

#ifndef OPENAPI_NN_LAYER_H_
#define OPENAPI_NN_LAYER_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace openapi::nn {

using linalg::Matrix;
using linalg::Vec;

class Layer {
 public:
  /// Zero-initialized layer (weights filled in by Load or InitHe).
  Layer(size_t in_dim, size_t out_dim);

  /// He-normal initialization: W_ij ~ N(0, 2/in_dim), b = 0.
  void InitHe(util::Rng* rng);

  size_t in_dim() const { return weights_.cols(); }
  size_t out_dim() const { return weights_.rows(); }

  /// z = W x + b.
  Vec Forward(const Vec& x) const;

  /// Batched forward: Z = X W^T + 1 b^T for X with one sample per row
  /// (n x in) -> (n x out). Row i is bit-identical to Forward(X.Row(i)):
  /// the underlying MultiplyABt kernel accumulates each dot product in the
  /// same left-to-right order as the matrix-vector path.
  Matrix ForwardBatch(const Matrix& x) const;

  const Matrix& weights() const { return weights_; }
  const Vec& bias() const { return bias_; }
  Matrix& mutable_weights() { return weights_; }
  Vec& mutable_bias() { return bias_; }

 private:
  Matrix weights_;  // out x in
  Vec bias_;        // out
};

}  // namespace openapi::nn

#endif  // OPENAPI_NN_LAYER_H_
