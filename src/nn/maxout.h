// MaxOut network (Goodfellow et al. [15]) — the other piecewise linear
// activation family the paper names alongside ReLU (Sec. I).
//
// A MaxOut unit computes max_k (w_k^T x + b_k) over its k "pieces"; a
// network of such units is piecewise linear, with locally linear regions
// indexed by which piece wins at every unit. MaxoutPlnn implements both
// the black-box Plm interface and the white-box oracle: the winning-piece
// selection pattern is the region id, and freezing the selections turns
// the network into an affine map whose exact (W, b) we compose layer by
// layer — the MaxOut analogue of OpenBox.
//
// OpenAPI itself needs nothing MaxOut-specific: the interpret/ tests use
// this class to demonstrate the method's family-independence.

#ifndef OPENAPI_NN_MAXOUT_H_
#define OPENAPI_NN_MAXOUT_H_

#include <vector>

#include "api/plm.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace openapi::nn {

/// One MaxOut layer: out_dim units, each the max of `pieces` affine maps.
class MaxoutLayer {
 public:
  MaxoutLayer(size_t in_dim, size_t out_dim, size_t pieces);

  void InitHe(util::Rng* rng);

  size_t in_dim() const { return pieces_[0].in_dim(); }
  size_t out_dim() const { return pieces_[0].out_dim(); }
  size_t num_pieces() const { return pieces_.size(); }

  /// h_j = max_k (piece_k(x))_j.
  Vec Forward(const Vec& x) const;

  /// Batched forward (one sample per row); bit-matches Forward row-wise.
  Matrix ForwardBatch(const Matrix& x) const;

  /// Winning piece index per unit at input x (ties -> lowest index).
  std::vector<size_t> Selection(const Vec& x) const;

  const Layer& piece(size_t k) const { return pieces_[k]; }
  Layer& mutable_piece(size_t k) { return pieces_[k]; }

 private:
  std::vector<Layer> pieces_;  // all shaped (in_dim -> out_dim)
};

/// MaxOut hidden layers followed by a linear softmax head.
class MaxoutPlnn : public api::Plm, public api::PlmOracle {
 public:
  /// `layer_sizes` = {d, h_1, ..., h_L, C}; every hidden layer uses
  /// `pieces` MaxOut pieces. Weights are He-initialized from `rng`.
  MaxoutPlnn(const std::vector<size_t>& layer_sizes, size_t pieces,
             util::Rng* rng);

  // --- api::Plm ---
  size_t dim() const override;
  size_t num_classes() const override { return output_.out_dim(); }
  Vec Predict(const Vec& x) const override;
  std::vector<Vec> PredictBatch(const std::vector<Vec>& xs) const override;

  // --- api::PlmOracle ---
  uint64_t RegionId(const Vec& x) const override;
  api::LocalLinearModel LocalModelAt(const Vec& x) const override;

  Vec Logits(const Vec& x) const;

  /// Batched pre-softmax logits (n x C), one matrix product per piece.
  Matrix LogitsBatch(const Matrix& x) const;

  size_t num_hidden_layers() const { return hidden_.size(); }
  const MaxoutLayer& hidden_layer(size_t i) const { return hidden_[i]; }
  const Layer& output_layer() const { return output_; }

 private:
  std::vector<MaxoutLayer> hidden_;
  Layer output_;
};

}  // namespace openapi::nn

#endif  // OPENAPI_NN_MAXOUT_H_
