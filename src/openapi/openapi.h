// Umbrella header: the full public API of the OpenAPI reproduction library.
//
// Typical usage (see examples/quickstart.cc):
//
//   openapi::util::Rng rng(42);
//   openapi::nn::Plnn model({64, 32, 10}, &rng);        // a PLM target
//   openapi::api::PredictionApi api(&model);            // the API boundary
//   openapi::interpret::OpenApiInterpreter interpreter;
//   auto result = interpreter.Interpret(api, x, c, &rng);
//   // result->dc are the exact decision features D_c of Eq. 1.

#ifndef OPENAPI_OPENAPI_H_
#define OPENAPI_OPENAPI_H_

#include "api/api_replica_set.h"
#include "api/ground_truth.h"
#include "api/plm.h"
#include "api/prediction_api.h"
#include "data/dataset.h"
#include "data/idx_io.h"
#include "data/synthetic.h"
#include "eval/classification_metrics.h"
#include "eval/consistency.h"
#include "eval/cross_validation.h"
#include "eval/exactness.h"
#include "eval/experiment_config.h"
#include "eval/flipping.h"
#include "eval/heatmap.h"
#include "eval/nearest_neighbor.h"
#include "eval/plotting.h"
#include "eval/sample_quality.h"
#include "extract/boundary.h"
#include "extract/local_model_extractor.h"
#include "extract/surrogate.h"
#include "interpret/decision_features.h"
#include "interpret/gradient_methods.h"
#include "interpret/interpretation_engine.h"
#include "interpret/lime_method.h"
#include "interpret/naive_method.h"
#include "interpret/openapi_method.h"
#include "interpret/report.h"
#include "interpret/request_options.h"
#include "interpret/zoo_method.h"
#include "linalg/cholesky.h"
#include "linalg/least_squares.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/vector_ops.h"
#include "lmt/lmt.h"
#include "lmt/logistic_regression.h"
#include "lmt/split.h"
#include "nn/activation_pattern.h"
#include "nn/layer.h"
#include "nn/maxout.h"
#include "nn/plnn.h"
#include "nn/trainer.h"
#include "util/check.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // OPENAPI_OPENAPI_H_
