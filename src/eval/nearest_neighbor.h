// Brute-force Euclidean nearest-neighbor lookup over a dataset; used by the
// consistency experiment (Fig. 4 pairs every instance with its nearest test
// neighbor). Exact search — the test sets here are at most a few thousand
// instances, so O(n) per query is fine and removes any approximation noise
// from the metric.

#ifndef OPENAPI_EVAL_NEAREST_NEIGHBOR_H_
#define OPENAPI_EVAL_NEAREST_NEIGHBOR_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace openapi::eval {

class NearestNeighborIndex {
 public:
  /// Keeps a reference to `dataset`; it must outlive the index.
  explicit NearestNeighborIndex(const data::Dataset* dataset);

  /// Index of the instance nearest to `query`; `exclude` (e.g. the query's
  /// own index) is skipped, pass SIZE_MAX to exclude nothing.
  size_t Nearest(const linalg::Vec& query, size_t exclude) const;

  /// Indices of the k nearest instances (ascending distance), skipping
  /// `exclude`.
  std::vector<size_t> KNearest(const linalg::Vec& query, size_t k,
                               size_t exclude) const;

 private:
  const data::Dataset* dataset_;
};

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_NEAREST_NEIGHBOR_H_
