#include "eval/consistency.h"

#include <algorithm>

namespace openapi::eval {

double InterpretationCosineSimilarity(const Vec& a, const Vec& b) {
  return linalg::CosineSimilarity(a, b);
}

ConsistencySummary SummarizeConsistency(std::vector<double> cs_values) {
  ConsistencySummary out;
  if (cs_values.empty()) return out;
  std::sort(cs_values.begin(), cs_values.end(), std::greater<double>());
  double sum = 0.0;
  for (double v : cs_values) sum += v;
  out.mean_cs = sum / static_cast<double>(cs_values.size());
  out.sorted_cs = std::move(cs_values);
  return out;
}

}  // namespace openapi::eval
