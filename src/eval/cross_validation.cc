#include "eval/cross_validation.h"

#include "util/check.h"

namespace openapi::eval {

std::vector<Fold> StratifiedKFold(const data::Dataset& dataset, size_t k,
                                  util::Rng* rng) {
  OPENAPI_CHECK_GE(k, 2u);
  OPENAPI_CHECK_LE(k, dataset.size());

  // Shuffle instance indices within each class, then deal them round-robin
  // into folds — stratification by construction.
  std::vector<std::vector<size_t>> by_class(dataset.num_classes());
  for (size_t i = 0; i < dataset.size(); ++i) {
    by_class[dataset.label(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> validation_sets(k);
  for (auto& members : by_class) {
    rng->Shuffle(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      validation_sets[j % k].push_back(members[j]);
    }
  }

  std::vector<Fold> folds(k);
  for (size_t f = 0; f < k; ++f) {
    folds[f].validation = validation_sets[f];
    for (size_t other = 0; other < k; ++other) {
      if (other == f) continue;
      folds[f].train.insert(folds[f].train.end(),
                            validation_sets[other].begin(),
                            validation_sets[other].end());
    }
  }
  return folds;
}

MinMeanMax CrossValidate(
    const data::Dataset& dataset, size_t k, util::Rng* rng,
    const std::function<double(const data::Dataset&, const data::Dataset&)>&
        evaluate) {
  std::vector<Fold> folds = StratifiedKFold(dataset, k, rng);
  std::vector<double> scores;
  scores.reserve(k);
  for (const Fold& fold : folds) {
    scores.push_back(evaluate(dataset.Select(fold.train),
                              dataset.Select(fold.validation)));
  }
  return Summarize(scores);
}

}  // namespace openapi::eval
