// Stratified k-fold cross-validation for model-configuration studies.
//
// The paper fixes its model hyperparameters; this utility is what a
// downstream user needs to pick theirs (LMT depth, leaf penalty, network
// width) without touching the held-out test set. Folds are stratified by
// class so every fold keeps the label distribution of the full set.

#ifndef OPENAPI_EVAL_CROSS_VALIDATION_H_
#define OPENAPI_EVAL_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "eval/sample_quality.h"

namespace openapi::eval {

/// Index sets for one fold: everything outside `validation` is `train`.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> validation;
};

/// Splits [0, dataset.size()) into k stratified folds. Every instance
/// appears in exactly one validation set. k must be >= 2 and <= the size
/// of the smallest class.
std::vector<Fold> StratifiedKFold(const data::Dataset& dataset, size_t k,
                                  util::Rng* rng);

/// Runs `evaluate(train_subset, validation_subset)` on every fold and
/// summarizes the returned scores (typically accuracies).
MinMeanMax CrossValidate(
    const data::Dataset& dataset, size_t k, util::Rng* rng,
    const std::function<double(const data::Dataset& train,
                               const data::Dataset& validation)>& evaluate);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_CROSS_VALIDATION_H_
