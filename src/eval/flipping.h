// Feature-flipping effectiveness evaluation (Fig. 3), following Ancona et
// al. [2] as adopted by the paper (Sec. V-A).
//
// Given an interpretation vector for (x0, c): sort features by descending
// |weight|; flip them one at a time (positive-weight features -> 0,
// negative-weight features -> 1) up to `max_flips`; after each flip record
//   CPP  — the absolute change of the model's probability for class c,
//   label-changed — whether argmax moved away from c's original argmax.
// Aggregated over instances these produce the paper's Avg. CPP and Avg.
// NLCI curves (one value per #changed-features).

#ifndef OPENAPI_EVAL_FLIPPING_H_
#define OPENAPI_EVAL_FLIPPING_H_

#include <vector>

#include "api/plm.h"
#include "linalg/vector_ops.h"

namespace openapi::eval {

using linalg::Vec;

struct FlippingCurve {
  /// cpp[t] = |p_c(x0) - p_c(x after t+1 flips)|.
  std::vector<double> cpp;
  /// label_changed[t] = 1 if the predicted label after t+1 flips differs
  /// from the original prediction, else 0.
  std::vector<int> label_changed;
};

/// Flipping curve for one instance. `attribution` scores each feature for
/// class c; `max_flips` is clamped to the dimensionality.
FlippingCurve EvaluateFlipping(const api::Plm& model, const Vec& x0,
                               size_t c, const Vec& attribution,
                               size_t max_flips);

struct AggregateFlipping {
  /// avg_cpp[t] = mean CPP over instances after t+1 flips.
  std::vector<double> avg_cpp;
  /// nlci[t] = number of instances whose label changed within t+1 flips
  /// (cumulative, matching the paper's NLCI counts).
  std::vector<double> nlci;
};

/// Averages per-instance curves; all curves must have equal length.
AggregateFlipping AggregateCurves(const std::vector<FlippingCurve>& curves);

/// Area Over the Perturbation Curve (Samek et al.): the mean probability
/// change over the first `k` flips, a single-number summary of a flipping
/// curve. Higher = the attribution found more influential features sooner.
/// `k` is clamped to the curve length; returns 0 for empty curves.
double Aopc(const FlippingCurve& curve, size_t k);

/// Mean AOPC over a set of curves.
double MeanAopc(const std::vector<FlippingCurve>& curves, size_t k);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_FLIPPING_H_
