// Interpretation-consistency evaluation (Fig. 4).
//
// For each evaluated instance x0 (predicted class c), find its nearest test
// neighbor x1 and report the cosine similarity between the two instances'
// interpretations for class c. The paper sorts the resulting per-instance
// CS values in descending order and plots them; SummarizeConsistency
// produces that sorted series plus its mean.

#ifndef OPENAPI_EVAL_CONSISTENCY_H_
#define OPENAPI_EVAL_CONSISTENCY_H_

#include <vector>

#include "linalg/vector_ops.h"

namespace openapi::eval {

using linalg::Vec;

struct ConsistencySummary {
  std::vector<double> sorted_cs;  // descending cosine similarities
  double mean_cs = 0.0;
};

/// Cosine similarity of two interpretations (thin wrapper so the metric has
/// one authoritative definition).
double InterpretationCosineSimilarity(const Vec& a, const Vec& b);

/// Sorts per-instance CS values descending and computes the mean.
ConsistencySummary SummarizeConsistency(std::vector<double> cs_values);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_CONSISTENCY_H_
