#include "eval/nearest_neighbor.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace openapi::eval {

NearestNeighborIndex::NearestNeighborIndex(const data::Dataset* dataset)
    : dataset_(dataset) {
  OPENAPI_CHECK(dataset != nullptr);
}

size_t NearestNeighborIndex::Nearest(const linalg::Vec& query,
                                     size_t exclude) const {
  OPENAPI_CHECK_GT(dataset_->size(), exclude == SIZE_MAX ? 0u : 1u);
  size_t best = SIZE_MAX;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < dataset_->size(); ++i) {
    if (i == exclude) continue;
    double dist = linalg::L2Distance(query, dataset_->x(i));
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

std::vector<size_t> NearestNeighborIndex::KNearest(const linalg::Vec& query,
                                                   size_t k,
                                                   size_t exclude) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(dataset_->size());
  for (size_t i = 0; i < dataset_->size(); ++i) {
    if (i == exclude) continue;
    scored.emplace_back(linalg::L2Distance(query, dataset_->x(i)), i);
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace openapi::eval
