// Classification quality metrics beyond plain accuracy: confusion matrix
// and per-class precision / recall / F1. Table I in the paper reports only
// accuracy; these back the extended model-quality report in bench_table1
// and give tests sharper assertions about what the trained targets learn.

#ifndef OPENAPI_EVAL_CLASSIFICATION_METRICS_H_
#define OPENAPI_EVAL_CLASSIFICATION_METRICS_H_

#include <string>
#include <vector>

#include "api/plm.h"
#include "data/dataset.h"

namespace openapi::eval {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes);

  /// Counts one (truth, predicted) observation.
  void Add(size_t truth, size_t predicted);

  /// Runs `model` over `dataset` and accumulates.
  void AddDataset(const api::Plm& model, const data::Dataset& dataset);

  size_t num_classes() const { return counts_.rows(); }
  /// counts()(t, p) = number of class-t instances predicted as p.
  const linalg::Matrix& counts() const { return counts_; }
  size_t total() const { return total_; }

  double Accuracy() const;
  /// Precision of class c: tp / (tp + fp); 0 when the class was never
  /// predicted.
  double Precision(size_t c) const;
  /// Recall of class c: tp / (tp + fn); 0 when the class never occurs.
  double Recall(size_t c) const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double F1(size_t c) const;
  /// Unweighted mean F1 over classes (macro average).
  double MacroF1() const;

  /// Fixed-width rendering for bench output.
  std::string ToString() const;

 private:
  linalg::Matrix counts_;  // rows = truth, cols = predicted
  size_t total_ = 0;
};

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_CLASSIFICATION_METRICS_H_
