// Gnuplot script emitters for the benchmark CSV series.
//
// The benches print the paper's tables to stdout and dump full series to
// CSV; these helpers additionally write a self-contained .gnuplot script
// next to each CSV so `gnuplot fig3_x.gnuplot` regenerates a figure close
// to the paper's (one curve per method). No plotting happens at bench
// time — the scripts are artifacts for offline use.

#ifndef OPENAPI_EVAL_PLOTTING_H_
#define OPENAPI_EVAL_PLOTTING_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace openapi::eval {

struct PlotSpec {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  bool logscale_y = false;
  /// Labels of the per-method curves, in legend order. Each label selects
  /// rows of the CSV whose first column equals it.
  std::vector<std::string> series;
  /// 1-based CSV column indices for x and y.
  int x_column = 2;
  int y_column = 3;
};

/// Writes `script_path` (a gnuplot program) that plots `csv_path` per the
/// spec and renders to a PNG named after the script.
Status WriteGnuplotScript(const std::string& script_path,
                          const std::string& csv_path,
                          const PlotSpec& spec);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_PLOTTING_H_
