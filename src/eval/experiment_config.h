// Shared scaffolding for the benchmark harnesses (bench/*.cc).
//
// The paper's pipeline — generate data, train a PLNN and an LMT on each
// dataset, pick evaluation instances, run interpreters — is identical in
// every experiment; only the metric differs. This module builds that
// pipeline once, with a scale knob (env OPENAPI_BENCH_SCALE = tiny | small
// | large) so the full suite runs in seconds on a laptop while still
// supporting paper-shaped runs (28x28 inputs).

#ifndef OPENAPI_EVAL_EXPERIMENT_CONFIG_H_
#define OPENAPI_EVAL_EXPERIMENT_CONFIG_H_

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "lmt/lmt.h"
#include "nn/plnn.h"
#include "nn/trainer.h"

namespace openapi::eval {

/// One knob bundle controlling dataset and model sizes.
struct ExperimentScale {
  std::string name;
  size_t width = 8;
  size_t height = 8;
  size_t num_classes = 10;
  size_t num_train = 2000;
  size_t num_test = 500;
  size_t eval_instances = 100;     // instances interpreted per experiment
  std::vector<size_t> hidden = {32, 24};  // PLNN hidden layer widths
  size_t plnn_epochs = 30;
  size_t lmt_min_split = 100;      // paper's stopping rule
  size_t lmt_max_depth = 6;
  size_t lr_max_iters = 150;       // leaf logistic-regression iterations
};

ExperimentScale TinyScale();   // 4x4 inputs, 4 classes — unit/CI scale
ExperimentScale SmallScale();  // 8x8 inputs, 10 classes — default bench
ExperimentScale LargeScale();  // 28x28 inputs, 10 classes — paper shape

/// Reads OPENAPI_BENCH_SCALE (default "small").
ExperimentScale ScaleFromEnv();

/// A fully trained experiment instance for one dataset style.
struct TrainedModels {
  data::SyntheticConfig data_config;
  data::Dataset train;
  data::Dataset test;
  std::unique_ptr<nn::Plnn> plnn;
  std::unique_ptr<lmt::LogisticModelTree> lmt;
  double plnn_train_acc = 0.0;
  double plnn_test_acc = 0.0;
  double lmt_train_acc = 0.0;
  double lmt_test_acc = 0.0;
};

/// Generates data and trains both target models. Deterministic in
/// (style, scale, seed).
TrainedModels BuildModels(data::SyntheticStyle style,
                          const ExperimentScale& scale, uint64_t seed);

/// Uniformly samples indices of test instances to interpret (the paper
/// samples 1000 test instances; we sample scale.eval_instances).
std::vector<size_t> PickEvalInstances(const data::Dataset& test,
                                      size_t count, util::Rng* rng);

/// A (model, oracle, label) triple the benches iterate over.
struct TargetModel {
  const api::Plm* model = nullptr;
  const api::PlmOracle* oracle = nullptr;
  std::string label;  // "PLNN" or "LMT"
};

/// Both targets of one TrainedModels bundle.
std::vector<TargetModel> Targets(const TrainedModels& models);

/// The perturbation distances the paper sweeps for the h-parameterized
/// baselines (Figs. 5-7): {1e-8, 1e-4, 1e-2}.
const std::vector<double>& PaperPerturbationDistances();

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_EXPERIMENT_CONFIG_H_
