#include "eval/exactness.h"

namespace openapi::eval {

double L1Dist(const PlmOracle& oracle, const Vec& x0, size_t c,
              const Vec& estimate) {
  Vec truth = api::GroundTruthDecisionFeatures(oracle.LocalModelAt(x0), c);
  return linalg::L1Distance(truth, estimate);
}

}  // namespace openapi::eval
