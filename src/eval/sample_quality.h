// Probe-quality metrics (Sec. V-C, Figs. 5-6).
//
//   RD (Region Difference): 0 if every probe shares x0's locally linear
//   region, else 1. Averaged over evaluated instances.
//
//   WD (Weight Difference): mean L1 distance between the *ground truth*
//   core parameters of x0 and those of each probe,
//     WD = sum_{c'} sum_i ||D^0_{c,c'} - D^i_{c,c'}||_1 / ((C-1)|S|).
//   Note both terms are oracle ground truths — WD measures how far the
//   probes' regions drift from x0's, independent of any estimator.

#ifndef OPENAPI_EVAL_SAMPLE_QUALITY_H_
#define OPENAPI_EVAL_SAMPLE_QUALITY_H_

#include <vector>

#include "api/ground_truth.h"

namespace openapi::eval {

using api::PlmOracle;
using linalg::Vec;

/// WD for one probe set (see file comment). `c` is the interpreted class.
double WeightDifference(const PlmOracle& oracle, const Vec& x0, size_t c,
                        const std::vector<Vec>& probes);

/// Aggregate min / mean / max over per-instance values — the error-bar
/// summaries Figs. 6-7 report.
struct MinMeanMax {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

MinMeanMax Summarize(const std::vector<double>& values);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_SAMPLE_QUALITY_H_
