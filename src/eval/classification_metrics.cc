#include "eval/classification_metrics.h"

#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace openapi::eval {

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : counts_(num_classes, num_classes) {
  OPENAPI_CHECK_GT(num_classes, 0u);
}

void ConfusionMatrix::Add(size_t truth, size_t predicted) {
  OPENAPI_CHECK_LT(truth, counts_.rows());
  OPENAPI_CHECK_LT(predicted, counts_.cols());
  counts_(truth, predicted) += 1.0;
  ++total_;
}

void ConfusionMatrix::AddDataset(const api::Plm& model,
                                 const data::Dataset& dataset) {
  for (size_t i = 0; i < dataset.size(); ++i) {
    Add(dataset.label(i), linalg::ArgMax(model.Predict(dataset.x(i))));
  }
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  double correct = 0.0;
  for (size_t c = 0; c < counts_.rows(); ++c) correct += counts_(c, c);
  return correct / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(size_t c) const {
  OPENAPI_CHECK_LT(c, counts_.cols());
  double predicted = 0.0;
  for (size_t t = 0; t < counts_.rows(); ++t) predicted += counts_(t, c);
  if (predicted == 0.0) return 0.0;
  return counts_(c, c) / predicted;
}

double ConfusionMatrix::Recall(size_t c) const {
  OPENAPI_CHECK_LT(c, counts_.rows());
  double actual = 0.0;
  for (size_t p = 0; p < counts_.cols(); ++p) actual += counts_(c, p);
  if (actual == 0.0) return 0.0;
  return counts_(c, c) / actual;
}

double ConfusionMatrix::F1(size_t c) const {
  double precision = Precision(c);
  double recall = Recall(c);
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  for (size_t c = 0; c < counts_.rows(); ++c) sum += F1(c);
  return sum / static_cast<double>(counts_.rows());
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (size_t p = 0; p < counts_.cols(); ++p) {
    os << util::StrFormat("%6zu", p);
  }
  os << "\n";
  for (size_t t = 0; t < counts_.rows(); ++t) {
    os << util::StrFormat("%9zu ", t);
    for (size_t p = 0; p < counts_.cols(); ++p) {
      os << util::StrFormat("%6d", static_cast<int>(counts_(t, p)));
    }
    os << util::StrFormat("   P=%.2f R=%.2f F1=%.2f", Precision(t),
                          Recall(t), F1(t));
    os << "\n";
  }
  return os.str();
}

}  // namespace openapi::eval
