// Exactness evaluation (Sec. V-D, Fig. 7): the L1 distance between the
// ground-truth decision features D_c (from the white-box oracle) and an
// interpretation method's estimate D_c^*.

#ifndef OPENAPI_EVAL_EXACTNESS_H_
#define OPENAPI_EVAL_EXACTNESS_H_

#include "api/ground_truth.h"
#include "eval/sample_quality.h"

namespace openapi::eval {

/// ||D_c(ground truth at x0) - estimate||_1.
double L1Dist(const PlmOracle& oracle, const Vec& x0, size_t c,
              const Vec& estimate);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_EXACTNESS_H_
