#include "eval/heatmap.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/file_io.h"

namespace openapi::eval {

namespace {

double MaxMagnitude(const Vec& values) {
  double best = 0.0;
  for (double v : values) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace

std::string RenderAscii(const Vec& values, size_t width, size_t height) {
  OPENAPI_CHECK_EQ(values.size(), width * height);
  const double max_mag = MaxMagnitude(values);
  // Glyph ramps, weakest to strongest.
  constexpr const char kPositive[] = {'.', '+', 'o', '*', '#'};
  constexpr const char kNegative[] = {'.', '-', '=', '%', '@'};
  constexpr int kLevels = 5;

  std::string out;
  out.reserve((width + 1) * height);
  for (size_t row = 0; row < height; ++row) {
    for (size_t col = 0; col < width; ++col) {
      double v = values[row * width + col];
      if (max_mag == 0.0) {
        out += '.';
        continue;
      }
      int level = static_cast<int>(
          std::floor(std::fabs(v) / max_mag * (kLevels - 1) + 0.5));
      level = std::clamp(level, 0, kLevels - 1);
      out += v >= 0.0 ? kPositive[level] : kNegative[level];
    }
    out += '\n';
  }
  return out;
}

Status WritePgm(const std::string& path, const Vec& values, size_t width,
                size_t height) {
  if (values.size() != width * height) {
    return Status::InvalidArgument("heatmap size mismatch");
  }
  std::ostringstream out;
  out << "P5\n" << width << " " << height << "\n255\n";
  const double max_mag = MaxMagnitude(values);
  for (double v : values) {
    double norm = max_mag == 0.0 ? 0.0 : std::fabs(v) / max_mag;
    out.put(static_cast<char>(
        static_cast<unsigned char>(std::lround(norm * 255.0))));
  }
  return util::WriteStringToFile(path, out.str());
}

Status WriteSignedPpm(const std::string& path, const Vec& values,
                      size_t width, size_t height) {
  if (values.size() != width * height) {
    return Status::InvalidArgument("heatmap size mismatch");
  }
  std::ostringstream out;
  out << "P6\n" << width << " " << height << "\n255\n";
  const double max_mag = MaxMagnitude(values);
  for (double v : values) {
    double norm = max_mag == 0.0 ? 0.0 : std::fabs(v) / max_mag;
    unsigned char intensity =
        static_cast<unsigned char>(std::lround(norm * 255.0));
    unsigned char rgb[3] = {0, 0, 0};
    if (v > 0.0) {
      rgb[0] = intensity;  // red = supports the class
    } else if (v < 0.0) {
      rgb[2] = intensity;  // blue = opposes the class
    }
    out.write(reinterpret_cast<const char*>(rgb), 3);
  }
  return util::WriteStringToFile(path, out.str());
}

}  // namespace openapi::eval
