#include "eval/experiment_config.h"

#include <cstdlib>

#include "util/logging.h"

namespace openapi::eval {

ExperimentScale TinyScale() {
  ExperimentScale s;
  s.name = "tiny";
  s.width = 4;
  s.height = 4;
  s.num_classes = 4;
  s.num_train = 400;
  s.num_test = 120;
  s.eval_instances = 30;
  s.hidden = {16};
  s.plnn_epochs = 50;
  s.lmt_min_split = 50;
  s.lmt_max_depth = 4;
  s.lr_max_iters = 80;
  return s;
}

ExperimentScale SmallScale() {
  ExperimentScale s;
  s.name = "small";
  return s;  // defaults are the small profile
}

ExperimentScale LargeScale() {
  ExperimentScale s;
  s.name = "large";
  s.width = 28;
  s.height = 28;
  s.num_classes = 10;
  s.num_train = 10000;
  s.num_test = 2000;
  s.eval_instances = 200;
  s.hidden = {256, 128, 100};  // the paper's PLNN architecture
  s.plnn_epochs = 20;
  s.lmt_min_split = 100;
  s.lmt_max_depth = 8;
  s.lr_max_iters = 200;
  return s;
}

ExperimentScale ScaleFromEnv() {
  const char* env = std::getenv("OPENAPI_BENCH_SCALE");
  std::string value = env ? env : "small";
  if (value == "tiny") return TinyScale();
  if (value == "large") return LargeScale();
  if (value != "small") {
    OPENAPI_LOG(Warning) << "unknown OPENAPI_BENCH_SCALE '" << value
                         << "', using small";
  }
  return SmallScale();
}

TrainedModels BuildModels(data::SyntheticStyle style,
                          const ExperimentScale& scale, uint64_t seed) {
  TrainedModels out;
  out.data_config.width = scale.width;
  out.data_config.height = scale.height;
  out.data_config.num_classes = scale.num_classes;
  out.data_config.num_train = scale.num_train;
  out.data_config.num_test = scale.num_test;
  out.data_config.style = style;
  out.data_config.seed = seed;
  auto [train, test] = data::GenerateSynthetic(out.data_config);
  out.train = std::move(train);
  out.test = std::move(test);

  // PLNN.
  util::Rng init_rng(seed ^ 0x5eedbeefULL);
  std::vector<size_t> layer_sizes;
  layer_sizes.push_back(out.train.dim());
  layer_sizes.insert(layer_sizes.end(), scale.hidden.begin(),
                     scale.hidden.end());
  layer_sizes.push_back(scale.num_classes);
  out.plnn = std::make_unique<nn::Plnn>(layer_sizes, &init_rng);
  nn::TrainerConfig trainer_config;
  trainer_config.epochs = scale.plnn_epochs;
  nn::Trainer trainer(out.plnn.get(), trainer_config);
  util::Rng train_rng(seed ^ 0x7a1b2c3d4ULL);
  trainer.Fit(out.train, &train_rng);
  out.plnn_train_acc = nn::Accuracy(*out.plnn, out.train);
  out.plnn_test_acc = nn::Accuracy(*out.plnn, out.test);

  // LMT.
  lmt::LmtConfig lmt_config;
  lmt_config.min_split_size = scale.lmt_min_split;
  lmt_config.max_depth = scale.lmt_max_depth;
  lmt_config.leaf_config.max_iters = scale.lr_max_iters;
  out.lmt = std::make_unique<lmt::LogisticModelTree>(
      lmt::LogisticModelTree::Fit(out.train, lmt_config));
  out.lmt_train_acc = nn::Accuracy(*out.lmt, out.train);
  out.lmt_test_acc = nn::Accuracy(*out.lmt, out.test);
  return out;
}

std::vector<size_t> PickEvalInstances(const data::Dataset& test,
                                      size_t count, util::Rng* rng) {
  count = std::min(count, test.size());
  return rng->SampleWithoutReplacement(test.size(), count);
}

std::vector<TargetModel> Targets(const TrainedModels& models) {
  return {
      TargetModel{models.plnn.get(), models.plnn.get(), "PLNN"},
      TargetModel{models.lmt.get(), models.lmt.get(), "LMT"},
  };
}

const std::vector<double>& PaperPerturbationDistances() {
  static const std::vector<double> kDistances = {1e-8, 1e-4, 1e-2};
  return kDistances;
}

}  // namespace openapi::eval
