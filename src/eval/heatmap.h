// Heatmap rendering for decision features (Fig. 2).
//
// The paper visualizes D_c as a red/blue heatmap over the image grid:
// red = positive weight (supports class c), blue = negative (opposes).
// We emit three renderings:
//   * ASCII art (signed glyph ramp) straight into the bench output,
//   * binary PGM (grayscale magnitude, portable everywhere),
//   * binary PPM (red/blue signed map, closest to the paper's figures).

#ifndef OPENAPI_EVAL_HEATMAP_H_
#define OPENAPI_EVAL_HEATMAP_H_

#include <string>

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace openapi::eval {

using linalg::Vec;

/// Renders `values` (row-major width x height) as ASCII art. Positive
/// values use {+, #}-style dark glyphs, negatives use {-, =} glyphs, near
/// zero renders as '.'; intensity scales with |value| / max|value|.
std::string RenderAscii(const Vec& values, size_t width, size_t height);

/// Writes an 8-bit binary PGM of |values| normalized to [0, 255].
Status WritePgm(const std::string& path, const Vec& values, size_t width,
                size_t height);

/// Writes an 8-bit binary PPM with positive values in red and negative in
/// blue, each channel scaled by |value| / max|value|.
Status WriteSignedPpm(const std::string& path, const Vec& values,
                      size_t width, size_t height);

}  // namespace openapi::eval

#endif  // OPENAPI_EVAL_HEATMAP_H_
