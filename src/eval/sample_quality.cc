#include "eval/sample_quality.h"

#include <algorithm>

#include "util/check.h"

namespace openapi::eval {

double WeightDifference(const PlmOracle& oracle, const Vec& x0, size_t c,
                        const std::vector<Vec>& probes) {
  OPENAPI_CHECK(!probes.empty());
  const api::LocalLinearModel local0 = oracle.LocalModelAt(x0);
  const size_t num_classes = local0.weights.cols();
  OPENAPI_CHECK_GT(num_classes, 1u);
  const uint64_t region0 = oracle.RegionId(x0);

  double total = 0.0;
  for (const Vec& probe : probes) {
    // Fast path: same region means identical core parameters, distance 0.
    if (oracle.RegionId(probe) == region0) continue;
    const api::LocalLinearModel local_i = oracle.LocalModelAt(probe);
    for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
      if (c_prime == c) continue;
      api::CoreParameters p0 =
          api::GroundTruthCoreParameters(local0, c, c_prime);
      api::CoreParameters pi =
          api::GroundTruthCoreParameters(local_i, c, c_prime);
      total += linalg::L1Distance(p0.d, pi.d);
    }
  }
  return total / (static_cast<double>(num_classes - 1) *
                  static_cast<double>(probes.size()));
}

MinMeanMax Summarize(const std::vector<double>& values) {
  MinMeanMax out;
  if (values.empty()) return out;
  out.min = values[0];
  out.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
    sum += v;
  }
  out.mean = sum / static_cast<double>(values.size());
  return out;
}

}  // namespace openapi::eval
