#include "eval/flipping.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace openapi::eval {

FlippingCurve EvaluateFlipping(const api::Plm& model, const Vec& x0,
                               size_t c, const Vec& attribution,
                               size_t max_flips) {
  OPENAPI_CHECK_EQ(x0.size(), attribution.size());
  const size_t d = x0.size();
  const size_t flips = std::min(max_flips, d);

  // Rank features by descending |weight|.
  std::vector<size_t> order(d);
  for (size_t i = 0; i < d; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(attribution[a]) > std::fabs(attribution[b]);
  });

  const Vec y0 = model.Predict(x0);
  const double p0 = y0[c];
  const size_t original_label = linalg::ArgMax(y0);

  FlippingCurve curve;
  curve.cpp.reserve(flips);
  curve.label_changed.reserve(flips);

  Vec x = x0;
  bool changed = false;
  for (size_t t = 0; t < flips; ++t) {
    size_t j = order[t];
    // Positive weights support class c: zero them out. Negative weights
    // oppose it: saturate them. (Sec. V-A's alteration rule.)
    x[j] = attribution[j] >= 0.0 ? 0.0 : 1.0;
    Vec y = model.Predict(x);
    curve.cpp.push_back(std::fabs(y[c] - p0));
    changed = changed || linalg::ArgMax(y) != original_label;
    curve.label_changed.push_back(changed ? 1 : 0);
  }
  return curve;
}

AggregateFlipping AggregateCurves(const std::vector<FlippingCurve>& curves) {
  AggregateFlipping out;
  if (curves.empty()) return out;
  const size_t len = curves[0].cpp.size();
  out.avg_cpp.assign(len, 0.0);
  out.nlci.assign(len, 0.0);
  for (const FlippingCurve& curve : curves) {
    OPENAPI_CHECK_EQ(curve.cpp.size(), len);
    for (size_t t = 0; t < len; ++t) {
      out.avg_cpp[t] += curve.cpp[t];
      out.nlci[t] += curve.label_changed[t];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(curves.size());
  for (double& v : out.avg_cpp) v *= inv_n;
  return out;
}

double Aopc(const FlippingCurve& curve, size_t k) {
  k = std::min(k, curve.cpp.size());
  if (k == 0) return 0.0;
  double sum = 0.0;
  for (size_t t = 0; t < k; ++t) sum += curve.cpp[t];
  return sum / static_cast<double>(k);
}

double MeanAopc(const std::vector<FlippingCurve>& curves, size_t k) {
  if (curves.empty()) return 0.0;
  double sum = 0.0;
  for (const FlippingCurve& curve : curves) sum += Aopc(curve, k);
  return sum / static_cast<double>(curves.size());
}

}  // namespace openapi::eval
