#include "interpret/probe_dispatch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/timer.h"

namespace openapi::interpret {

double EffectiveRowLatency(const api::PredictionApi& api,
                           const ChunkedDispatchConfig& config) {
  const double observed = api.row_latency().seconds_per_row();
  return observed > 0.0 ? observed : config.seed_seconds_per_row;
}

size_t PlanChunkRows(const ChunkedDispatchConfig& config,
                     const RequestOptions& options, double seconds_per_row,
                     size_t rows_left) {
  OPENAPI_CHECK_GT(rows_left, 0u);
  double target_seconds;
  if (options.deadline.has_value()) {
    const double remaining =
        std::chrono::duration<double>(*options.deadline -
                                      std::chrono::steady_clock::now())
            .count();
    target_seconds =
        std::max(remaining, 0.0) * config.deadline_chunk_fraction;
    if (options.cancel.cancellable()) {
      // A roomy deadline must not cost cancellation its reaction bound:
      // the tighter of the two targets wins.
      target_seconds = std::min(target_seconds, config.cancel_chunk_seconds);
    }
  } else {
    target_seconds = config.cancel_chunk_seconds;
  }
  const double per_row = std::max(seconds_per_row, 1e-12);
  const size_t floor_rows = std::max<size_t>(config.min_chunk_rows, 1);
  const double planned = std::floor(target_seconds / per_row);
  if (planned >= static_cast<double>(rows_left)) return rows_left;
  if (planned <= static_cast<double>(floor_rows)) {
    return std::min(floor_rows, rows_left);
  }
  return static_cast<size_t>(planned);
}

Status DispatchProbes(const api::PredictionApi& api,
                      const std::vector<Vec>& points,
                      const RequestOptions& options,
                      const ChunkedDispatchConfig& config,
                      uint64_t* consumed, std::vector<Vec>* predictions,
                      size_t out_offset) {
  if (points.empty()) return Status::OK();
  OPENAPI_CHECK_GE(predictions->size(), out_offset + points.size());
  // The endpoint's response vectors are its own allocations; assign()
  // copies them into the caller's stable row buffers and lets them go.
  auto emit = [&](const std::vector<Vec>& batch, size_t base) {
    for (size_t i = 0; i < batch.size(); ++i) {
      (*predictions)[out_offset + base + i].assign(batch[i].begin(),
                                                   batch[i].end());
    }
  };

  if (!config.enabled) {  // pre-chunking dispatch, the bench baseline
    std::vector<Vec> batch = api.PredictBatch(points);
    *consumed += points.size();
    emit(batch, 0);
    return Status::OK();
  }

  const bool bounded =
      options.deadline.has_value() || options.cancel.cancellable();
  if (!bounded) {
    // Unbounded request: the whole batch is one chunk — but still timed,
    // so deadline-free traffic keeps the endpoint's estimate warm for
    // the deadlined requests that follow it.
    util::Timer timer;
    std::vector<Vec> batch = api.PredictBatch(points);
    *consumed += points.size();
    api.row_latency().Record(points.size(), timer.ElapsedSeconds(),
                             config.ewma_alpha);
    emit(batch, 0);
    return Status::OK();
  }

  size_t done = 0;
  std::vector<Vec> chunk;  // sub-batch buffer, reused across chunks
  while (done < points.size()) {
    const double per_row = EffectiveRowLatency(api, config);
    const size_t rows =
        PlanChunkRows(config, options, per_row, points.size() - done);
    // Predictive gate: dispatch only if the chunk's estimated duration
    // still fits before the deadline (and the budget covers it, and no
    // cancellation landed). Rows already dispatched stay in *consumed.
    OPENAPI_RETURN_NOT_OK(EnforceRequestOptions(
        options, *consumed, rows, per_row * static_cast<double>(rows)));
    const bool whole_batch = done == 0 && rows == points.size();
    if (!whole_batch) {
      // Sub-batch rows are copied into the reusable chunk buffer; the
      // whole-batch case (a fast endpoint under a roomy deadline plans
      // one chunk) skips the copy and sends `points` directly.
      chunk.assign(points.begin() + static_cast<ptrdiff_t>(done),
                   points.begin() + static_cast<ptrdiff_t>(done + rows));
    }
    util::Timer timer;
    std::vector<Vec> batch = api.PredictBatch(whole_batch ? points : chunk);
    *consumed += rows;
    // Lock-free fold into the endpoint's shared estimate: concurrent
    // requests chunking against this endpoint serialize through the CAS
    // in LatencyEstimate::Record, no lock on the probe path.
    api.row_latency().Record(rows, timer.ElapsedSeconds(),
                             config.ewma_alpha);
    emit(batch, done);
    done += rows;
  }
  return Status::OK();
}

}  // namespace openapi::interpret
