#include "interpret/probe_dispatch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace openapi::interpret {

double EffectiveRowLatency(const api::PredictionApi& api,
                           const ChunkedDispatchConfig& config) {
  const double observed = api.row_latency().seconds_per_row();
  return observed > 0.0 ? observed : config.seed_seconds_per_row;
}

size_t PlanChunkRows(const ChunkedDispatchConfig& config,
                     const RequestOptions& options, double seconds_per_row,
                     size_t rows_left) {
  OPENAPI_CHECK_GT(rows_left, 0u);
  double target_seconds;
  if (options.deadline.has_value()) {
    const double remaining =
        std::chrono::duration<double>(
            *options.deadline - util::EffectiveClock(options.clock)->Now())
            .count();
    target_seconds =
        std::max(remaining, 0.0) * config.deadline_chunk_fraction;
    if (options.cancel.cancellable()) {
      // A roomy deadline must not cost cancellation its reaction bound:
      // the tighter of the two targets wins.
      target_seconds = std::min(target_seconds, config.cancel_chunk_seconds);
    }
  } else {
    target_seconds = config.cancel_chunk_seconds;
  }
  const double per_row = std::max(seconds_per_row, 1e-12);
  const size_t floor_rows = std::max<size_t>(config.min_chunk_rows, 1);
  const double planned = std::floor(target_seconds / per_row);
  if (planned >= static_cast<double>(rows_left)) return rows_left;
  if (planned <= static_cast<double>(floor_rows)) {
    return std::min(floor_rows, rows_left);
  }
  return static_cast<size_t>(planned);
}

namespace {

/// Sends one chunk, absorbing retryable refusals under config.retry.
/// Accounting rules (the reason this is the ONLY place a chunk touches
/// the endpoint): *consumed advances by exactly what each attempt
/// charged — served or refused — so it tracks api.query_count() even
/// through failures; every charged-but-unanswered query additionally
/// lands in stats->wasted_queries, and each refused attempt bumps
/// stats->retries. On success with latency recording on, only the
/// WINNING attempt's duration is folded into the endpoint's EWMA —
/// backoff sleeps and refused round-trips are failure costs, not row
/// latency.
Status SendChunkWithRetry(const api::PredictionApi& api,
                          const std::vector<Vec>& rows,
                          const RequestOptions& options,
                          const ChunkedDispatchConfig& config,
                          bool record_latency, uint64_t* consumed,
                          ProbeRetryStats* stats, std::vector<Vec>* out) {
  const RetryConfig& retry = config.retry;
  const util::Clock* clock = util::EffectiveClock(options.clock);
  // Decorrelated-jitter stream, a pure function of (seed, position): a
  // single-threaded run replays its backoff schedule bit-identically.
  util::Rng jitter(util::Rng::MixSeed(
      retry.seed, *consumed ^ static_cast<uint64_t>(rows.size())));
  const size_t max_attempts = std::max<size_t>(retry.max_attempts, 1);
  double prev_sleep = retry.initial_backoff_seconds;
  for (size_t attempt = 0;; ++attempt) {
    uint64_t attempt_consumed = 0;
    util::Timer timer(options.clock);
    Result<std::vector<Vec>> batch =
        api.TryPredictBatch(rows, &attempt_consumed);
    *consumed += attempt_consumed;
    if (batch.ok()) {
      if (attempt_consumed > rows.size()) {
        // A composite endpoint (replica set) reserved extra queries for
        // internal re-dispatch on the way to this answer: charged, but
        // no caller-visible rows came of them.
        stats->wasted_queries += attempt_consumed - rows.size();
      }
      if (record_latency) {
        api.row_latency().Record(rows.size(), timer.ElapsedSeconds(),
                                 config.ewma_alpha);
      }
      *out = std::move(batch).ValueOrDie();
      return Status::OK();
    }
    stats->wasted_queries += attempt_consumed;
    stats->retries += 1;
    const Status& refusal = batch.status();
    if (!refusal.IsRetryable()) return refusal;
    if (attempt + 1 >= max_attempts) {
      return Status::Unavailable(util::StrFormat(
          "chunk of %llu rows refused %llu consecutive times (last: %s); "
          "%llu queries consumed, %llu wasted, %llu retries this request",
          static_cast<unsigned long long>(rows.size()),
          static_cast<unsigned long long>(max_attempts),
          refusal.message().c_str(),
          static_cast<unsigned long long>(*consumed),
          static_cast<unsigned long long>(stats->wasted_queries),
          static_cast<unsigned long long>(stats->retries)));
    }
    if (retry.retry_budget > 0 && stats->retries >= retry.retry_budget) {
      return Status::Unavailable(util::StrFormat(
          "retry budget %llu exhausted (last refusal: %s); %llu queries "
          "consumed, %llu wasted",
          static_cast<unsigned long long>(retry.retry_budget),
          refusal.message().c_str(),
          static_cast<unsigned long long>(*consumed),
          static_cast<unsigned long long>(stats->wasted_queries)));
    }
    const double sleep =
        std::min(retry.max_backoff_seconds,
                 jitter.Uniform(retry.initial_backoff_seconds,
                                std::max(retry.initial_backoff_seconds,
                                         prev_sleep * 3.0)));
    prev_sleep = sleep;
    // Re-gate before sleeping: the backoff itself must not carry the
    // request past a deadline/cancel a fresh chunk would have honored.
    OPENAPI_RETURN_NOT_OK(
        EnforceRequestOptions(options, *consumed, rows.size(), sleep));
    clock->SleepFor(sleep);
  }
}

}  // namespace

Status DispatchProbes(const api::PredictionApi& api,
                      const std::vector<Vec>& points,
                      const RequestOptions& options,
                      const ChunkedDispatchConfig& config,
                      uint64_t* consumed, std::vector<Vec>* predictions,
                      size_t out_offset, ProbeRetryStats* retry_stats) {
  if (points.empty()) return Status::OK();
  OPENAPI_CHECK_GE(predictions->size(), out_offset + points.size());
  ProbeRetryStats local_stats;  // callers that don't track still get bounds
  ProbeRetryStats* stats =
      retry_stats != nullptr ? retry_stats : &local_stats;
  // The endpoint's response vectors are its own allocations; assign()
  // copies them into the caller's stable row buffers and lets them go.
  auto emit = [&](const std::vector<Vec>& batch, size_t base) {
    for (size_t i = 0; i < batch.size(); ++i) {
      (*predictions)[out_offset + base + i].assign(batch[i].begin(),
                                                   batch[i].end());
    }
  };

  std::vector<Vec> batch;
  if (!config.enabled) {  // pre-chunking dispatch, the bench baseline
    OPENAPI_RETURN_NOT_OK(SendChunkWithRetry(api, points, options, config,
                                             /*record_latency=*/false,
                                             consumed, stats, &batch));
    emit(batch, 0);
    return Status::OK();
  }

  const bool bounded =
      options.deadline.has_value() || options.cancel.cancellable();
  if (!bounded) {
    // Unbounded request: the whole batch is one chunk — but still timed,
    // so deadline-free traffic keeps the endpoint's estimate warm for
    // the deadlined requests that follow it.
    OPENAPI_RETURN_NOT_OK(SendChunkWithRetry(api, points, options, config,
                                             /*record_latency=*/true,
                                             consumed, stats, &batch));
    emit(batch, 0);
    return Status::OK();
  }

  size_t done = 0;
  std::vector<Vec> chunk;  // sub-batch buffer, reused across chunks
  while (done < points.size()) {
    const double per_row = EffectiveRowLatency(api, config);
    const size_t rows =
        PlanChunkRows(config, options, per_row, points.size() - done);
    // Predictive gate: dispatch only if the chunk's estimated duration
    // still fits before the deadline (and the budget covers it, and no
    // cancellation landed). Queries already charged stay in *consumed.
    OPENAPI_RETURN_NOT_OK(EnforceRequestOptions(
        options, *consumed, rows, per_row * static_cast<double>(rows)));
    const bool whole_batch = done == 0 && rows == points.size();
    if (!whole_batch) {
      // Sub-batch rows are copied into the reusable chunk buffer; the
      // whole-batch case (a fast endpoint under a roomy deadline plans
      // one chunk) skips the copy and sends `points` directly.
      chunk.assign(points.begin() + static_cast<ptrdiff_t>(done),
                   points.begin() + static_cast<ptrdiff_t>(done + rows));
    }
    OPENAPI_RETURN_NOT_OK(SendChunkWithRetry(
        api, whole_batch ? points : chunk, options, config,
        /*record_latency=*/true, consumed, stats, &batch));
    emit(batch, done);
    done += rows;
  }
  return Status::OK();
}

}  // namespace openapi::interpret
