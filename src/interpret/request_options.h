// Per-request serving controls: query budget, deadline, cancellation.
//
// A serving system in front of a metered black-box API treats queries as
// the first-class resource (cf. Tramèr et al., USENIX Security 2016): the
// closed-form solver is exact, but its shrink loop may legally consume up
// to max_iterations batches before giving up, and a caller needs to say
// "spend at most Q queries / T milliseconds on this request" — or revoke
// work that is no longer needed. RequestOptions carries those three
// controls; the solver and the engine's cached path check them BEFORE
// every probe batch — and, through the chunked dispatch layer
// (probe_dispatch.h), between the latency-sized CHUNKS of each batch,
// with a predictive deadline gate fed by the endpoint's per-row latency
// EWMA — so a request with max_queries = Q never issues more than Q API
// queries, a deadlined request stops within one chunk (not one batch) of
// its deadline, and every rejection reports the exact count it did
// consume (via interpret::EngineResponse::queries and the solver's
// queries_consumed out-parameter).
//
// Defaults are "unlimited": zero budget means no budget, no deadline, an
// empty CancelToken. A default RequestOptions therefore reproduces the
// pre-session behavior exactly.

#ifndef OPENAPI_INTERPRET_REQUEST_OPTIONS_H_
#define OPENAPI_INTERPRET_REQUEST_OPTIONS_H_

#include <chrono>
#include <cstdint>
#include <optional>

#include "util/cancellation.h"
#include "util/clock.h"
#include "util/status.h"

namespace openapi::interpret {

struct RequestOptions {
  /// Maximum API queries this request may consume, across the cached
  /// path's validation pair AND the solver's probe batches. 0 = unlimited.
  uint64_t max_queries = 0;

  /// Absolute wall-clock deadline. Checked before every probe chunk
  /// (batches are split into latency-sized chunks when a deadline is
  /// set); work in flight is finished, no new chunk starts past — or is
  /// predicted to finish past — the deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Cooperative cancellation handle (empty = never cancelled).
  util::CancelToken cancel;

  /// Skip the session's persistent tier (store::RegionStore) on a RAM
  /// miss: the request pays a fresh extraction instead of reloading a
  /// persisted region. Latency-sensitive callers use this to keep disk
  /// reads off their path; it is also the A/B switch the warm-restart
  /// bench uses to price the disk tier. No effect when the session has no
  /// store attached.
  bool bypass_disk_tier = false;

  /// Time source for every clock read this request's controls trigger —
  /// deadline checks, chunk planning, retry backoff sleeps. Null means
  /// the real steady clock; tests inject a util::FakeClock to make
  /// deadline and backoff behavior deterministic.
  const util::Clock* clock = nullptr;

  static RequestOptions WithBudget(uint64_t queries) {
    RequestOptions options;
    options.max_queries = queries;
    return options;
  }

  static RequestOptions WithTimeout(std::chrono::milliseconds timeout,
                                    const util::Clock* clock = nullptr) {
    RequestOptions options;
    options.clock = clock;
    options.deadline = util::EffectiveClock(clock)->Now() + timeout;
    return options;
  }
};

/// Gate before spending `next_cost` more queries on a request that has
/// already consumed `consumed`: OK, or Cancelled / DeadlineExceeded /
/// BudgetExhausted (checked in that order) with the exact consumed count
/// in the message. `estimated_seconds` is the PREDICTED duration of the
/// next batch (from the endpoint's per-row latency EWMA — see
/// interpret/probe_dispatch.h): when a deadline is set and the batch is
/// predicted to finish past it, the gate rejects with DeadlineExceeded
/// BEFORE the batch is dispatched, so a request whose very first chunk
/// would already blow the deadline fails with queries == 0 instead of
/// overshooting. estimated_seconds <= 0 disables the predictive part
/// (pure now-vs-deadline check); next_cost == 0 checks only
/// cancellation + deadline.
Status EnforceRequestOptions(const RequestOptions& options,
                             uint64_t consumed, uint64_t next_cost,
                             double estimated_seconds);

/// EnforceRequestOptions without the predictive deadline gate — the
/// non-latency-aware call sites (budget pre-checks, pre-flight).
Status CheckRequestControls(const RequestOptions& options, uint64_t consumed,
                            uint64_t next_cost);

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_REQUEST_OPTIONS_H_
