// Extended LIME baselines (Ribeiro et al. [34], adapted per Sec. V).
//
// The paper's adaptation fits a linear model to ln(y_c / y_{c'}) over a
// sample of perturbed instances drawn from the hypercube of edge length h
// around x0; the fitted coefficients approximate D_{c,c'} and the intercept
// approximates B_{c,c'}. Two regressors are evaluated:
//   * Linear Regression LIME — ordinary least squares (L in the figures),
//   * Ridge Regression LIME  — L2-penalized (R in the figures), the variant
//     the paper shows collapsing toward a constant predictor at small h
//     because the penalty dwarfs the vanishing feature variance.
// The ridge intercept is left unpenalized (features and targets are
// centered before the penalized solve), matching the scikit-learn Ridge
// default behind the published LIME code.

#ifndef OPENAPI_INTERPRET_LIME_METHOD_H_
#define OPENAPI_INTERPRET_LIME_METHOD_H_

#include "interpret/decision_features.h"

namespace openapi::interpret {

enum class LimeRegressor {
  kLinearRegression,  // ordinary least squares
  kRidgeRegression,   // L2 penalty `ridge_lambda`
};

struct LimeConfig {
  double perturbation_distance = 1e-4;  // h; paper sweeps 1e-8/1e-4/1e-2
  size_t num_samples = 0;  // 0 = auto: 2 * (d + 1) perturbed instances
  LimeRegressor regressor = LimeRegressor::kLinearRegression;
  double ridge_lambda = 1.0;  // sklearn Ridge default alpha
};

class LimeInterpreter : public BlackBoxInterpreter {
 public:
  explicit LimeInterpreter(LimeConfig config = {});

  const char* name() const override {
    return config_.regressor == LimeRegressor::kLinearRegression
               ? "LinearLIME"
               : "RidgeLIME";
  }

  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

  const LimeConfig& config() const { return config_; }

 private:
  LimeConfig config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_LIME_METHOD_H_
