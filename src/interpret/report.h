// Human-readable interpretation reports.
//
// Decision features are d-dimensional weight vectors; what a user of the
// library actually wants to show an analyst is "which features pushed this
// prediction, and which pushed against it". InterpretationReport distills
// an Interpretation into a ranked top-k summary, a plain-text rendering,
// and a simple machine-readable key=value dump the examples emit.

#ifndef OPENAPI_INTERPRET_REPORT_H_
#define OPENAPI_INTERPRET_REPORT_H_

#include <string>
#include <vector>

#include "interpret/decision_features.h"

namespace openapi::interpret {

struct FeatureContribution {
  size_t feature = 0;   // feature index in the input vector
  double weight = 0.0;  // D_c entry: >0 supports the class, <0 opposes
  double value = 0.0;   // the instance's value of that feature
};

struct InterpretationReport {
  size_t predicted_class = 0;
  double predicted_probability = 0.0;
  std::vector<FeatureContribution> supporting;  // descending weight
  std::vector<FeatureContribution> opposing;    // ascending weight
  double support_mass = 0.0;  // sum of positive weights / total |weight|
  size_t queries = 0;
  size_t iterations = 0;
};

/// Builds a report for `interpretation` of (x0, c). `top_k` bounds both
/// lists. `feature_names` is optional; indices are used when empty.
InterpretationReport BuildReport(const Interpretation& interpretation,
                                 const Vec& x0, size_t c, const Vec& y,
                                 size_t top_k);

/// Multi-line plain-text rendering. Feature names default to "f<i>" or
/// "pixel(r,c)" when `width` > 0 (image-shaped inputs).
std::string RenderReport(const InterpretationReport& report,
                         size_t width = 0);

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_REPORT_H_
