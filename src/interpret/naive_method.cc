#include "interpret/naive_method.h"

#include "linalg/lu.h"

namespace openapi::interpret {

NaiveInterpreter::NaiveInterpreter(NaiveConfig config) : config_(config) {
  OPENAPI_CHECK_GT(config_.perturbation_distance, 0.0);
}

Result<Interpretation> NaiveInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  const size_t d = api.dim();
  const size_t num_classes = api.num_classes();
  if (x0.size() != d) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= num_classes || num_classes < 2) {
    return Status::InvalidArgument("bad class configuration");
  }

  std::vector<Vec> probes =
      SampleHypercube(x0, config_.perturbation_distance, d, rng);
  // x0 and all d probes go to the endpoint as one batched request.
  std::vector<Vec> batch;
  batch.reserve(probes.size() + 1);
  batch.push_back(x0);
  for (const Vec& p : probes) batch.push_back(p);
  // analyze: direct-probe(paper's naive d+1-query baseline predates the
  // dispatcher; one raw batch keeps its query count comparable)
  std::vector<Vec> predictions = api.PredictBatch(batch);

  // One LU factorization of the shared (d+1)x(d+1) coefficient matrix,
  // reused across the C-1 right-hand sides.
  Matrix a = BuildCoefficientMatrix(x0, probes);
  OPENAPI_ASSIGN_OR_RETURN(linalg::LuDecomposition lu,
                           linalg::LuDecomposition::Factor(a));

  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == c) continue;
    OPENAPI_ASSIGN_OR_RETURN(Vec rhs,
                             BuildLogOddsRhs(predictions, c, c_prime));
    Vec beta = lu.Solve(rhs);
    CoreParameters pair;
    pair.b = beta[0];
    pair.d.assign(beta.begin() + 1, beta.end());
    pairs.push_back(std::move(pair));
  }

  Interpretation out;
  out.dc = CombinePairEstimates(pairs);
  out.pairs = std::move(pairs);
  out.probes = std::move(probes);
  out.iterations = 1;
  out.edge_length = config_.perturbation_distance;
  out.queries = 1 + d;  // exact: x0 plus one probe per dimension
  return out;
}

}  // namespace openapi::interpret
