// InterpretationEngine: the asynchronous serving layer over OpenAPI.
//
// The paper's evaluation (and any production deployment of the method)
// interprets many (x0, c) requests against one endpoint. Running them one
// at a time wastes two structural facts:
//   1. requests whose x0 share a locally linear region — or that repeat an
//      x0 for different classes c — are answered by one extracted canonical
//      classifier (decision features are gauge-invariant), and
//   2. the requests are independent, so they shard across a thread pool.
//
// The engine does both, in three request shapes:
//   * InterpretAll    — synchronous batch; blocks until every result.
//   * SubmitAsync     — one request as a std::future; returns immediately.
//   * InterpretStream — a batch whose results are consumed in completion
//     order while stragglers still run.
// By default the engine BORROWS the process-wide util::SharedThreadPool
// rather than owning workers, so any number of engines / concurrent
// callers multiplex one pool sized to the hardware; setting
// EngineConfig::num_threads > 0 gives the engine a private pool of that
// size (deterministic scheduling for tests, isolation for benches).
//
// Each worker consults a shared region cache before paying the closed-form
// solve. The cache replaces extract::CachedInterpreter's linear scan with
// hash indexes guarded by a shared_mutex:
//   * a point memo (hash of x0's raw bits -> region slot): a request whose
//     exact x0 was answered before costs ZERO API queries, any class;
//   * a fingerprint index (quantized canonical-model hash -> slot) that
//     deduplicates regions extracted concurrently by different workers;
//   * argmax buckets: candidate regions are grouped by the class they
//     predict at their anchor, so a request at a new x0 first tests the
//     bucket matching argmax(y0) — hottest regions first (each hit
//     promotes its region one step toward the bucket head, the classic
//     transpose heuristic, so no per-scan sorting) — and only falls back
//     to the remaining regions when the bucket misses (a region can span
//     the decision boundary, so the bucket key is a pruning heuristic,
//     never a correctness filter).
// A request at a new x0 still validates cache candidates against the API
// output (2 batched queries) — black-box point location fundamentally
// needs the candidate test — but candidates are scanned under a shared
// lock, so readers proceed in parallel and only insertions serialize.
//
// Determinism: each request derives its probe RNG statelessly from
// (seed, request index) via Rng::MixSeed, so result CONTENT does not
// depend on the thread count, scheduling, or stream consumption order
// (cache-hit timing can differ, but every answer is exact either way —
// that is Theorem 2 plus gauge invariance).
//
// Query accounting is exact under concurrency and in every error path:
// the solver reports the queries it actually consumed (success or
// failure) via InterpretCounted, and the engine's totals are sums of
// those, matching the api's atomic query_count when the engine is the
// api's only client — including when `api` is an ApiReplicaSet, whose
// per-replica counters sum to the same total.
//
// Lifetimes: the engine, the api, and (for streams) the request storage
// must outlive outstanding async work. The engine's destructor blocks
// until every task it submitted has finished, so destroying the engine
// after abandoning a future/stream is safe; destroying the API before the
// engine is not.

#ifndef OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
#define OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interpret/openapi_method.h"
#include "util/thread_pool.h"

namespace openapi::interpret {

/// One unit of work: interpret the prediction at x0 for class c.
struct EngineRequest {
  Vec x0;
  size_t c = 0;
};

struct EngineConfig {
  /// Settings of the inner closed-form solver.
  OpenApiConfig openapi;
  /// Worker threads. 0 (the default) borrows the process-wide
  /// util::SharedThreadPool; > 0 gives this engine a private pool of
  /// exactly that size.
  size_t num_threads = 0;
  /// Cap applied when this engine is the first to size the shared pool
  /// (util::DefaultThreadCount(max_threads)); 0 means uncapped — use all
  /// hardware threads. Ignored when num_threads > 0 or the shared pool
  /// already exists.
  size_t max_threads = 0;
  /// Master switch for the shared region cache. With it off the engine is
  /// a plain concurrent fan-out of OpenApiInterpreter (useful as the
  /// uncached baseline in benches).
  bool use_region_cache = true;
  /// Prune the candidate scan with argmax buckets + hit-frequency
  /// ordering. Off = the plain linear scan (bench baseline). Hit/miss
  /// behavior is identical either way.
  bool bucket_candidates = true;
  /// Match tolerance when validating a cached region model against the
  /// API's output (infinity norm over probabilities).
  double match_tol = 1e-9;
  /// Edge length of the hypercube the validation probe is drawn from.
  double validation_edge = 1e-6;
  /// Relative quantization of the region fingerprint used for dedup.
  double fingerprint_resolution = 1e-6;
};

/// Monotonic counters describing engine activity since construction (or
/// the last ResetStats). All updates are atomic.
struct EngineStats {
  uint64_t requests = 0;
  uint64_t point_memo_hits = 0;  // answered with 0 API queries
  uint64_t cache_hits = 0;       // answered with 2 API queries
  uint64_t cache_misses = 0;     // paid a full extraction
  uint64_t failures = 0;         // solver did not converge / bad request
  uint64_t queries = 0;          // total API queries consumed
};

/// A batch in flight: results are pulled in COMPLETION order while later
/// requests still run, so a consumer can render/forward early answers
/// without waiting for stragglers. Item::index identifies the request;
/// content per index is deterministic in (requests, seed) even though the
/// yield order is scheduling-dependent. Obtained from
/// InterpretationEngine::InterpretStream.
class InterpretationStream {
 public:
  struct Item {
    size_t index;  // position in the submitted request batch
    Result<Interpretation> result;
  };

  /// Blocks until another request finishes and returns it; nullopt once
  /// all `total()` items have been delivered. Single-consumer.
  std::optional<Item> Next();

  size_t total() const { return total_; }
  size_t delivered() const { return delivered_; }

 private:
  friend class InterpretationEngine;

  struct Shared {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Item> completed;
    std::vector<EngineRequest> requests;  // stable storage for workers
  };

  std::shared_ptr<Shared> shared_;
  size_t total_ = 0;
  size_t delivered_ = 0;
};

class InterpretationEngine {
 public:
  explicit InterpretationEngine(EngineConfig config = {});

  /// Blocks until every async task this engine submitted has finished.
  ~InterpretationEngine();

  /// Interprets every request against `api`, sharded across the engine's
  /// pool. results[i] corresponds to requests[i]. Deterministic in
  /// (requests, seed) regardless of thread count. Safe to call from
  /// multiple threads; all calls share the region cache.
  std::vector<Result<Interpretation>> InterpretAll(
      const api::PredictionApi& api,
      const std::vector<EngineRequest>& requests, uint64_t seed) const;

  /// Asynchronous single-request submission: enqueues the request on the
  /// engine's pool and returns immediately. The result is identical to
  /// Interpret(api, request.x0, request.c, seed, stream) — pass distinct
  /// `stream` values for distinct requests to keep probe RNG streams
  /// independent (InterpretAll uses the request index). `api` must outlive
  /// the future's completion.
  std::future<Result<Interpretation>> SubmitAsync(
      const api::PredictionApi& api, EngineRequest request, uint64_t seed,
      uint64_t stream = 0) const;

  /// Submits the whole batch and returns a stream that yields results as
  /// they complete (request i uses RNG stream i, exactly like
  /// InterpretAll). `api` must outlive the stream's completion; the
  /// stream object itself may be dropped early (workers keep the shared
  /// state alive).
  InterpretationStream InterpretStream(const api::PredictionApi& api,
                                       std::vector<EngineRequest> requests,
                                       uint64_t seed) const;

  /// Single-request entry point sharing the same cache (request index
  /// doubles as the RNG stream, so pass distinct `stream` values for
  /// distinct requests).
  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c, uint64_t seed,
                                   uint64_t stream = 0) const;

  size_t cache_size() const;
  EngineStats stats() const;
  void ResetStats() const;
  /// Drops all cached regions, the point memo, and the argmax buckets
  /// (e.g. when re-targeting the engine at a different endpoint). Safe to
  /// race with in-flight requests: they re-extract as needed.
  void ClearCache() const;

  const EngineConfig& config() const { return config_; }
  size_t num_threads() const { return pool_->num_threads(); }
  bool owns_pool() const { return owned_pool_ != nullptr; }

 private:
  struct CachedRegion {
    api::LocalLinearModel model;
    uint64_t fingerprint = 0;
  };

  /// 128-bit hash of x0's raw double bits; collision odds are negligible,
  /// so point-memo hits never revalidate against the API.
  static std::pair<uint64_t, uint64_t> PointKey(const Vec& x0);

  Result<Interpretation> InterpretCached(const api::PredictionApi& api,
                                         const Vec& x0, size_t c,
                                         util::Rng* rng) const;

  /// Returns the slot whose model explains (x0, y0) and (probe, y_probe),
  /// or SIZE_MAX. Shared (reader) lock. `argmax` is the predicted class at
  /// x0 (from y0) selecting the bucket scanned first.
  size_t FindMatchingRegion(const Vec& x0, const Vec& y0, const Vec& probe,
                            const Vec& y_probe, size_t argmax) const;

  /// Inserts `model` (deduplicating by fingerprint), memoizes x0 -> slot,
  /// and files the slot under bucket `argmax`. Exclusive (writer) lock.
  /// Returns the slot.
  size_t InsertRegion(api::LocalLinearModel model, uint64_t fingerprint,
                      const Vec& x0, size_t argmax) const;

  bool RegionMatches(const api::LocalLinearModel& model, const Vec& x,
                     const Vec& y) const;

  /// Async-task bookkeeping so the destructor can drain safely.
  void BeginAsyncTask() const;
  void EndAsyncTask() const;

  EngineConfig config_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  // only if num_threads > 0
  util::ThreadPool* pool_ = nullptr;              // owned or shared

  mutable std::mutex async_mutex_;
  mutable std::condition_variable async_idle_;
  mutable size_t async_outstanding_ = 0;

  mutable std::shared_mutex cache_mutex_;
  mutable std::vector<CachedRegion> regions_;
  mutable std::unordered_map<uint64_t, size_t> by_fingerprint_;
  /// argmax class at the region's anchor -> slots, scan order by hits.
  mutable std::unordered_map<size_t, std::vector<size_t>> by_argmax_;
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  mutable std::unordered_map<std::pair<uint64_t, uint64_t>, size_t, PairHash>
      point_memo_;

  mutable std::atomic<uint64_t> stat_requests_{0};
  mutable std::atomic<uint64_t> stat_point_memo_hits_{0};
  mutable std::atomic<uint64_t> stat_cache_hits_{0};
  mutable std::atomic<uint64_t> stat_cache_misses_{0};
  mutable std::atomic<uint64_t> stat_failures_{0};
  mutable std::atomic<uint64_t> stat_queries_{0};
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
