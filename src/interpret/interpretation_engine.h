// InterpretationEngine: the asynchronous serving layer over OpenAPI.
//
// The paper's evaluation (and any production deployment of the method)
// interprets many (x0, c) requests against one or more endpoints. The
// engine exploits two structural facts:
//   1. requests whose x0 share a locally linear region — or that repeat an
//      x0 for different classes c — are answered by one extracted canonical
//      classifier (decision features are gauge-invariant), and
//   2. the requests are independent, so they shard across a thread pool.
//
// ## Sessions: the public surface
//
// The unit of serving is an ENDPOINT SESSION. `engine.OpenSession(api)`
// binds one `api::PredictionApi` (or `api::ApiReplicaSet`) and namespaces
// the region cache, point memo, and argmax buckets to that endpoint: one
// engine serves several distinct endpoints concurrently with zero
// cross-endpoint cache traffic and no ClearCache footgun. A session
// offers four request shapes:
//   * Interpret       — one request, synchronously.
//   * InterpretAll    — synchronous batch; blocks until every result.
//   * SubmitAsync     — one request as a std::future; returns immediately.
//   * InterpretStream — a batch whose results are consumed in completion
//     order while stragglers still run.
// All four return `EngineResponse`: the Result<Interpretation> plus the
// request's exact query consumption, how the cache served it, the shrink
// iterations, and wall latency — the serving envelope a metered client
// bills against.
//
// Each `EngineRequest` carries `RequestOptions` (query budget, deadline,
// CancelToken), enforced before every probe batch down in the solver's
// shrink loop — and, for deadlined/cancellable requests, between the
// latency-sized CHUNKS each batch is split into (probe_dispatch.h): the
// chunk size comes from a per-endpoint EWMA of observed per-row latency,
// so a request stops within one chunk (not one slow batch) of its
// deadline, a request whose first chunk is already predicted past the
// deadline is rejected with zero queries, and a request with
// max_queries = Q never issues more than Q API queries. A rejected
// request reports the exact count it did consume on the BudgetExhausted
// / DeadlineExceeded / Cancelled statuses — partial chunks included.
//
// The extraction (cache-miss) path runs each request out of a pooled
// SolverWorkspace (one per concurrently running request, checked out per
// request via WorkspaceLease), so the solver's first-iteration buffer
// growth is paid once per worker, not once per miss.
//
// Session caches are BOUNDED two ways: `EngineConfig::cache_capacity`
// (or the SessionOptions override) caps the region COUNT, and
// `cache_capacity_bytes` caps the cache's measured RESIDENT BYTES —
// region model payloads + point-memo keys + region-index boxes, the
// gauges EngineStats reports. Inserts past either bound evict via a
// second-chance clock over per-region hit counters (hot regions survive,
// cold ones cycle out; evictions surface in EngineStats). Evicting a
// region also drops its point-memo keys and bucket entries, so a stale
// memo can never serve a dead slot.
//
// ## The persistent tier (store::RegionStore)
//
// A session opened with SessionOptions::store gets a DISK tier under the
// RAM cache: every region the session pays extraction queries for (and
// every ImportRegion) is written through to the store's append-only
// region log, and a RAM miss consults the store's directory BEFORE
// paying a fresh extraction. The reload costs only the 2-query
// validation pair the request already bought — the decoded model is
// revalidated against (x0, y0) and (probe, y_probe) exactly like a RAM
// candidate, so a stale or corrupt record can never serve. The three
// ways a cache lookup can resolve are distinct CacheOutcomes:
// kMemoryHit (RAM, 2 queries), kDiskHit (log reload, 2 queries, zero
// extraction), kMiss (full extraction). Eviction REFRESHES the store:
// the victim's learned box (grown by traffic since it was persisted) is
// put back, re-appending only when the box actually grew. Restarting a
// process on the same log therefore serves its whole region history
// without re-paying any extraction — the warm-restart contract the
// store tests pin down.
//
// By default the engine BORROWS the process-wide util::SharedThreadPool
// rather than owning workers, so any number of engines / concurrent
// callers multiplex one pool sized to the hardware; setting
// EngineConfig::num_threads > 0 gives the engine a private pool of that
// size (deterministic scheduling for tests, isolation for benches).
//
// ## The per-session region cache
//
// Each worker consults the session's cache before paying the closed-form
// solve — hash indexes guarded by a shared_mutex:
//   * a point memo (hash of x0's raw bits -> region slot): a request whose
//     exact x0 was answered before costs ZERO API queries, any class;
//   * a fingerprint index (quantized canonical-model hash -> slot) that
//     deduplicates regions extracted concurrently by different workers;
//   * argmax buckets: candidate regions are grouped by the class they
//     predict at their anchor, so a request at a new x0 first tests the
//     bucket matching argmax(y0) — hottest regions first (each hit
//     promotes its region one step toward the bucket head, the classic
//     transpose heuristic) — and only falls back to the remaining regions
//     when the bucket misses (a region can span the decision boundary, so
//     the bucket key is a pruning heuristic, never a correctness filter);
//   * the REGION INDEX (region_index.h, EngineConfig::use_region_index,
//     default on): hierarchical point location over learned per-region
//     bounding boxes, the argmax partition as its top level. At
//     production cache sizes (10^5-10^6 regions) the bucketed scan above
//     still evaluates every cached model; the index stabs the boxes in
//     O(log n)-ish time, validates the few candidates exactly, and only
//     when none survives falls back to the full scan (then GROWS the
//     matched region's box, so repeat traffic stays logarithmic). The
//     index is decision-invisible: identical hit/miss outcomes and query
//     counts as the scan legs on every request.
// A request at a new x0 still validates cache candidates against the API
// output (2 batched queries) — black-box point location fundamentally
// needs the candidate test — but candidates are scanned under a shared
// lock, so readers proceed in parallel and only insertions serialize.
//
// Determinism: each request derives its probe RNG statelessly from
// (seed, request index) via Rng::MixSeed, so result CONTENT does not
// depend on the thread count, scheduling, or stream consumption order
// (cache-hit timing can differ, but every answer is exact either way —
// that is Theorem 2 plus gauge invariance).
//
// Query accounting is exact under concurrency and in every error path:
// the solver reports the queries it actually consumed (success, failure,
// budget rejection) via InterpretCounted, and session/engine totals are
// sums of those, matching the api's atomic query_count when the session
// is the api's only client — including when `api` is an ApiReplicaSet,
// whose per-replica counters sum to the same total.
//
// Lifetimes: the engine must outlive every use of its sessions (sessions
// borrow its pool and config); the api must outlive its session's last
// request. Workers keep the session itself alive via shared_ptr, and the
// engine's destructor blocks until every task it submitted has finished,
// so destroying the engine after abandoning a future/stream is safe;
// destroying the API before its session's outstanding work is not.
//
// The pre-session free-standing entry points (Interpret/InterpretAll/
// SubmitAsync/InterpretStream taking an api argument, plus engine-level
// cache_size/ClearCache) lived one release as deprecated shims and are
// now REMOVED: sessions are the only serving surface.

#ifndef OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
#define OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "interpret/openapi_method.h"
#include "interpret/region_index.h"
#include "interpret/request_options.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace openapi::store {
struct RegionRecord;
class RegionStore;
}  // namespace openapi::store

namespace openapi::interpret {

/// One unit of work: interpret the prediction at x0 for class c, under
/// the request's own budget / deadline / cancellation controls.
struct EngineRequest {
  Vec x0;
  size_t c = 0;
  RequestOptions options;
};

struct EngineConfig {
  /// Settings of the inner closed-form solver — including the
  /// latency-aware chunked probe dispatch (`openapi.dispatch`: EWMA
  /// alpha, conservative cold-endpoint seed, per-chunk time targets; see
  /// interpret/probe_dispatch.h). Deadlined requests served through the
  /// engine split their probe batches into chunks sized from the
  /// endpoint's observed per-row latency and re-check their controls
  /// between chunks, so deadline overshoot is bounded by one chunk.
  OpenApiConfig openapi;
  /// Worker threads. 0 (the default) borrows the process-wide
  /// util::SharedThreadPool; > 0 gives this engine a private pool of
  /// exactly that size.
  size_t num_threads = 0;
  /// Cap applied when this engine is the first to size the shared pool
  /// (util::DefaultThreadCount(max_threads)); 0 means uncapped — use all
  /// hardware threads. Ignored when num_threads > 0 or the shared pool
  /// already exists.
  size_t max_threads = 0;
  /// Master switch for the per-session region cache. With it off every
  /// session is a plain concurrent fan-out of OpenApiInterpreter (useful
  /// as the uncached baseline in benches).
  bool use_region_cache = true;
  /// Prune the candidate scan with argmax buckets + hit-frequency
  /// ordering. Off = the plain linear scan (bench baseline). Hit/miss
  /// behavior is identical either way. Consulted only when
  /// use_region_index is off — the index supersedes the bucket scan.
  bool bucket_candidates = true;
  /// Answer the candidate scan by hierarchical point location
  /// (region_index.h): stab the learned per-region bounding boxes in
  /// O(log n)-ish time, validate the few candidates exactly, and fall
  /// back to the full scan only when no candidate survives (first visit
  /// to an uncovered part of a region; the validated hit then grows the
  /// region's box, so repeat traffic stays logarithmic). Off preserves
  /// the linear/bucketed scan as the reference leg. DECISION-INVISIBLE:
  /// hit/miss outcomes and consumed query counts are identical either
  /// way on every request (the parity fuzz tests assert it).
  bool use_region_index = true;
  /// Default region capacity of each session's cache; 0 = unbounded.
  /// OpenSession can override per session. At capacity, inserts evict
  /// via a second-chance clock over per-region hit counters.
  size_t cache_capacity = 0;
  /// Default BYTE budget of each session's cache; 0 = unbounded.
  /// SessionOptions can override per session. The budget covers the
  /// cache's measured resident bytes — region model payloads, point-memo
  /// keys, and region-index boxes (the EngineStats gauges) — and is a
  /// hard ceiling: the same clock eviction runs until the cache fits,
  /// and a region that cannot fit even alone is served without being
  /// cached. Orthogonal to cache_capacity; either (or both) may bound a
  /// session.
  size_t cache_capacity_bytes = 0;
  /// Drift detection cadence: every Nth POINT-MEMO hit re-pays the
  /// 2-query validation pair and checks the memoized model against the
  /// endpoint's live answer. 0 (the default) disables the check — memo
  /// hits stay 0-query — matching the paper's static-model setting.
  /// When a drift check (or an ordinary cache-candidate validation)
  /// catches a mismatch that no cached or stored region explains, the
  /// session bumps its drift EPOCH: every RAM region, memo entry, index
  /// entry, and store directory entry tagged with an older epoch is
  /// invalidated — stale closed forms are re-extracted, never served.
  uint64_t drift_check_interval = 0;
  /// Match tolerance when validating a cached region model against the
  /// API's output (infinity norm over probabilities).
  double match_tol = 1e-9;
  /// Edge length of the hypercube the validation probe is drawn from.
  double validation_edge = 1e-6;
  /// Relative quantization of the region fingerprint used for dedup.
  double fingerprint_resolution = 1e-6;
};

/// Counters and gauges describing a session (or, aggregated, every
/// session on the engine). The first block is monotonic activity since
/// construction (or the last ResetStats); the *_bytes fields are GAUGES
/// of current cache residency — they track live state, are NOT cleared
/// by ResetStats, and a session's gauges leave the engine aggregate when
/// the session is destroyed. All updates are atomic.
struct EngineStats {
  uint64_t requests = 0;
  uint64_t point_memo_hits = 0;  // answered with 0 API queries
  uint64_t cache_hits = 0;       // RAM hits: answered with 2 API queries
  uint64_t disk_hits = 0;        // region-log reloads: 2 API queries,
                                 // zero extraction
  uint64_t cache_misses = 0;     // paid (or attempted) a full extraction
  uint64_t evictions = 0;        // regions displaced by capacity/byte
                                 // pressure
  uint64_t failures = 0;         // solver failures, bad requests, and
                                 // budget/deadline/cancel rejections
  uint64_t queries = 0;          // total API queries consumed
  uint64_t store_appends = 0;    // records written through to the region
                                 // log (inserts, imports, grown-box
                                 // eviction refreshes)
  uint64_t drift_events = 0;     // validation pair caught a model swap:
                                 // the session's drift epoch was bumped
  uint64_t stale_invalidations = 0;  // cached regions invalidated by
                                     // drift-epoch bumps (not served)
  uint64_t wasted_queries = 0;   // queries charged by probe attempts that
                                 // were refused (retried or given up on)
  uint64_t retries = 0;          // probe attempts re-sent after a
                                 // retryable refusal

  uint64_t region_bytes = 0;  // gauge: cached model payloads + slots
  uint64_t memo_bytes = 0;    // gauge: point-memo map + per-region keys
  uint64_t index_bytes = 0;   // gauge: region-index nodes + learned boxes
  /// Gauge: total cache residency — the value the byte budget bounds.
  uint64_t cache_bytes = 0;   // region_bytes + memo_bytes + index_bytes
};

/// How the session cache served one request.
enum class CacheOutcome {
  kBypass,          // cache disabled, or rejected before the lookup
  kPointMemo,       // exact x0 repeat: 0 API queries
  kMemoryHit,       // candidate scan validated a RAM region: 2 queries
  kDiskHit,         // RAM missed; a region-log record validated: 2
                    // queries, zero extraction
  kMiss,            // paid (or attempted) a full extraction
  kEvictedRefetch,  // a miss that re-extracted a previously EVICTED region
  kStaleRefetch,    // a drift check caught the endpoint serving a new
                    // model: the stale cache was invalidated and this
                    // request re-extracted at the new epoch
};

/// The serving envelope around one request's answer: what a metered
/// client needs to bill, retry, or debug the request.
struct EngineResponse {
  /// The interpretation, or InvalidArgument / DidNotConverge /
  /// BudgetExhausted / DeadlineExceeded / Cancelled.
  Result<Interpretation> result;
  /// Exact API queries this request consumed — success or failure; never
  /// exceeds the request's max_queries.
  uint64_t queries = 0;
  CacheOutcome cache_outcome = CacheOutcome::kBypass;
  /// Hypercube-shrink iterations the solver attempted (0 on cache hits).
  size_t shrink_iterations = 0;
  /// Wall-clock latency of the request inside the engine, milliseconds.
  /// For SubmitAsync/InterpretStream this is measured from SUBMISSION,
  /// so it includes time spent queued behind other work — the latency a
  /// client actually observes.
  double latency_ms = 0.0;
};

/// A batch in flight on a session: responses are pulled in COMPLETION
/// order while later requests still run, so a consumer can render/forward
/// early answers without waiting for stragglers. Item::index identifies
/// the request; content per index is deterministic in (requests, seed)
/// even though the yield order is scheduling-dependent.
class SessionStream {
 public:
  struct Item {
    size_t index;  // position in the submitted request batch
    EngineResponse response;
  };

  /// Blocks until another request finishes and returns it; nullopt once
  /// all `total()` items have been delivered. Single-consumer.
  std::optional<Item> Next();

  size_t total() const { return total_; }
  size_t delivered() const { return delivered_; }

 private:
  friend class EndpointSession;

  struct Shared {
    util::Mutex mutex;
    util::CondVar ready;
    std::deque<Item> completed GUARDED_BY(mutex);
    /// Stable storage for workers: written once by InterpretStream before
    /// any task is submitted, immutable afterwards — read lock-free.
    // analyze: unguarded(written once before any worker task is
    // submitted, immutable afterwards; Submit's queue mutex publishes it)
    std::vector<EngineRequest> requests;
  };

  std::shared_ptr<Shared> shared_;
  size_t total_ = 0;
  size_t delivered_ = 0;
};

class InterpretationEngine;

/// Per-session overrides and attachments for OpenSession. Zero/null
/// fields fall back to the EngineConfig defaults, so `OpenSession(api,
/// {})` behaves exactly like the plain overload.
struct SessionOptions {
  /// Region-count cap of this session's cache; 0 = use
  /// EngineConfig::cache_capacity.
  size_t cache_capacity = 0;
  /// Byte budget of this session's cache (region payloads + memo keys +
  /// index boxes); 0 = use EngineConfig::cache_capacity_bytes.
  size_t cache_capacity_bytes = 0;
  /// Persistent tier: the session writes every extracted/imported region
  /// through to this store and consults it on RAM misses (kDiskHit).
  /// nullptr = RAM-only session. The store must outlive the session and
  /// match the endpoint's (dim, num_classes); any number of sessions may
  /// share ONE store instance (it is thread-safe), but two stores must
  /// never be opened on the same log file.
  store::RegionStore* store = nullptr;
};

/// One endpoint's serving context: a region cache + point memo + argmax
/// buckets namespaced to a single PredictionApi, with a bounded capacity.
/// Obtained from InterpretationEngine::OpenSession; always held by
/// shared_ptr (async work keeps the session alive until it completes).
/// All methods are const and safe to call concurrently.
class EndpointSession
    : public std::enable_shared_from_this<EndpointSession> {
 public:
  EndpointSession(const EndpointSession&) = delete;
  EndpointSession& operator=(const EndpointSession&) = delete;

  /// Unwinds this session's byte gauges from the engine aggregate (its
  /// historical activity counters stay in the aggregate).
  ~EndpointSession();

  /// Serves one request synchronously. `stream` disambiguates the probe
  /// RNG stream — pass distinct values for distinct requests under one
  /// seed (the batch entry points use the request index).
  EngineResponse Interpret(const EngineRequest& request, uint64_t seed,
                           uint64_t stream = 0) const;

  /// Serves every request, sharded across the engine's pool.
  /// responses[i] corresponds to requests[i] and uses RNG stream i.
  /// Deterministic in (requests, seed) regardless of thread count.
  std::vector<EngineResponse> InterpretAll(
      const std::vector<EngineRequest>& requests, uint64_t seed) const;

  /// Enqueues the request on the engine's pool and returns immediately.
  /// The response is identical to Interpret(request, seed, stream).
  std::future<EngineResponse> SubmitAsync(EngineRequest request,
                                          uint64_t seed,
                                          uint64_t stream = 0) const;

  /// Submits the whole batch and returns a stream that yields responses
  /// as they complete (request i uses RNG stream i, exactly like
  /// InterpretAll). The stream object may be dropped early; workers keep
  /// the shared state and this session alive.
  SessionStream InterpretStream(std::vector<EngineRequest> requests,
                                uint64_t seed) const;

  /// Warm-start hook: installs an already-known locally linear region —
  /// `model` valid around `anchor`, certified over the hypercube
  /// {x : |x_j - anchor_j| <= edge_length} — without paying extraction
  /// queries. This is how a tiered store (or a bench) reloads a cache of
  /// millions of regions: the model is fingerprinted, filed under the
  /// class it predicts at `anchor`, memoized for the anchor point, and
  /// filed into the region index with the certified hypercube as its
  /// initial learned box. Imported models are trusted exactly like
  /// extracted ones (an anchor repeat serves from the memo with zero
  /// validation queries; any other point still pays the 2-query
  /// validation pair), so the caller must import models that match the
  /// live endpoint. Pass canonical (column-0-pinned) models if later
  /// re-extractions of the same region should deduplicate against the
  /// import. With a store attached the import is also written through to
  /// the region log, so a bulk import is how a log is seeded without
  /// endpoint traffic. Returns the region's cache slot;
  /// FailedPrecondition when the engine's region cache is disabled or
  /// the region cannot fit the session's byte budget even alone;
  /// InvalidArgument when the model/anchor shape does not match the
  /// endpoint. Thread-safe.
  Result<size_t> ImportRegion(api::LocalLinearModel model, const Vec& anchor,
                              double edge_length) const;

  const api::PredictionApi& api() const { return *api_; }
  size_t cache_size() const EXCLUDES(cache_mutex_);
  /// Region capacity of this session's cache; 0 = unbounded.
  size_t cache_capacity() const { return capacity_; }
  /// Byte budget of this session's cache; 0 = unbounded.
  size_t cache_capacity_bytes() const { return byte_budget_; }
  /// The attached persistent tier; nullptr for a RAM-only session.
  const store::RegionStore* store() const { return store_; }
  /// This session's own counters (the engine aggregates all sessions).
  EngineStats stats() const;
  void ResetStats() const;
  /// Drops this session's cached regions, point memo, argmax buckets,
  /// and eviction bookkeeping. Safe to race with in-flight requests:
  /// they re-extract as needed.
  void ClearCache() const EXCLUDES(cache_mutex_);
  /// This session's current drift epoch (starts at the attached store's
  /// recovered epoch, or 0 without a store; bumped per drift event).
  uint64_t drift_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  friend class InterpretationEngine;

  using PointKey = std::pair<uint64_t, uint64_t>;

  struct CachedRegion {
    api::LocalLinearModel model;
    uint64_t fingerprint = 0;
    /// A point the region is known to contain (the extraction x0 or the
    /// persisted record's anchor). Eviction spills the region with THIS
    /// anchor — a learned box's center can lie outside the true polytope,
    /// so the anchor is the only point a reloaded record may trust.
    Vec anchor;
    /// False for a slot vacated by byte-budget eviction and not yet
    /// refilled (on free_slots_): every scan/sweep skips it. The model is
    /// emptied on eviction, so a free slot holds no payload bytes.
    bool occupied = true;
    /// Hit counter feeding the second-chance eviction clock: bumped on
    /// every memo/scan hit, halved each time the clock passes. Atomic so
    /// hits under the shared (reader) lock need no writer upgrade.
    std::atomic<uint32_t> hits{0};
    /// Point-memo keys filed under this slot (bounded FIFO), removed
    /// from the memo when the region is evicted.
    std::vector<PointKey> points;
    /// Argmax bucket keys this slot is filed under.
    std::vector<size_t> bucket_keys;
    /// Drift epoch this region was extracted/validated at. Regions from
    /// an older epoch are invalidated eagerly on a drift bump; the scan
    /// paths also skip them defensively, so a stale closed form can never
    /// serve even mid-invalidation.
    uint64_t epoch = 0;

    CachedRegion(api::LocalLinearModel m, uint64_t fp, Vec anchor_point)
        : model(std::move(m)),
          fingerprint(fp),
          anchor(std::move(anchor_point)) {}
    CachedRegion(CachedRegion&& other) noexcept
        : model(std::move(other.model)),
          fingerprint(other.fingerprint),
          anchor(std::move(other.anchor)),
          occupied(other.occupied),
          hits(other.hits.load(std::memory_order_relaxed)),
          points(std::move(other.points)),
          bucket_keys(std::move(other.bucket_keys)),
          epoch(other.epoch) {}
    CachedRegion& operator=(CachedRegion&& other) noexcept {
      model = std::move(other.model);
      fingerprint = other.fingerprint;
      anchor = std::move(other.anchor);
      occupied = other.occupied;
      hits.store(other.hits.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      points = std::move(other.points);
      bucket_keys = std::move(other.bucket_keys);
      epoch = other.epoch;
      return *this;
    }
  };

  struct PairHash {
    size_t operator()(const PointKey& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// Per-session counters and byte gauges; every bump is mirrored into
  /// the engine's aggregate. Gauges move by balanced +/- deltas (negative
  /// deltas wrap through unsigned arithmetic and cancel exactly), are
  /// only mutated under the writer lock — so reads under either lock are
  /// coherent — and are NOT touched by Reset.
  struct StatCounters {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> point_memo_hits{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> disk_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> store_appends{0};
    std::atomic<uint64_t> drift_events{0};
    std::atomic<uint64_t> stale_invalidations{0};
    std::atomic<uint64_t> wasted_queries{0};
    std::atomic<uint64_t> retries{0};

    std::atomic<uint64_t> region_bytes{0};
    std::atomic<uint64_t> memo_bytes{0};
    std::atomic<uint64_t> index_bytes{0};
  };

  EndpointSession(const InterpretationEngine* engine,
                  const api::PredictionApi* api, size_t capacity,
                  size_t byte_budget, store::RegionStore* store);

  static EngineStats Snapshot(const StatCounters& counters);
  static void Reset(StatCounters& counters);

  /// 128-bit hash of x0's raw double bits; collision odds are negligible,
  /// so point-memo hits never revalidate against the API.
  static PointKey PointKeyOf(const Vec& x0);

  void Bump(std::atomic<uint64_t> StatCounters::* counter,
            uint64_t n = 1) const;

  /// Moves a byte gauge by a signed delta in the session AND engine
  /// counters (two's-complement wraparound makes +/- deltas cancel
  /// exactly in the unsigned atomics). Gauge mutations happen only under
  /// the writer lock.
  void BumpGauge(std::atomic<uint64_t> StatCounters::* gauge,
                 int64_t delta) const REQUIRES(cache_mutex_);

  /// Resident bytes one cached region pins: the slot struct + its model
  /// payload + its anchor (memo keys and index boxes are accounted by
  /// their own gauges).
  static size_t SlotBytes(const CachedRegion& region);

  /// Sum of the three byte gauges — the value the byte budget bounds.
  size_t CacheBytesLocked() const REQUIRES(cache_mutex_);

  /// Occupied slots: regions_.size() minus the vacated free slots.
  size_t OccupiedLocked() const REQUIRES_SHARED(cache_mutex_);

  /// Re-measures the region index and moves the index_bytes gauge by the
  /// difference. Called after every index mutation under the writer lock.
  void RefreshIndexBytesLocked() const REQUIRES(cache_mutex_);

  /// Evicts (never touching `protect_slot`) until the cache fits the
  /// byte budget. If the protected slot ALONE still exceeds the budget
  /// after everything else is gone, it is evicted too — a region that
  /// cannot fit is served uncached rather than breaching the ceiling.
  void EnforceByteBudgetLocked(size_t protect_slot,
                               std::vector<store::RegionRecord>* spills)
      const REQUIRES(cache_mutex_);

  Result<Interpretation> Serve(const EngineRequest& request, uint64_t seed,
                               uint64_t stream, uint64_t* consumed,
                               CacheOutcome* outcome, size_t* iterations,
                               ProbeRetryStats* retry_stats) const;

  Result<Interpretation> InterpretCached(const Vec& x0, size_t c,
                                         const RequestOptions& options,
                                         util::Rng* rng, uint64_t* consumed,
                                         CacheOutcome* outcome,
                                         size_t* iterations,
                                         ProbeRetryStats* retry_stats) const;

  /// Returns the slot whose model explains (x0, y0) and (probe, y_probe),
  /// or SIZE_MAX. Takes the shared (reader) lock itself. `argmax` is the
  /// predicted class at x0 (from y0) selecting the bucket (or index
  /// forest) scanned first. With use_region_index on, candidates come
  /// from the index's stabbing query and the full scan runs only when
  /// none of them validates — the decision (and therefore every
  /// downstream query count) is identical to the scan legs.
  size_t FindMatchingRegion(const Vec& x0, const Vec& y0, const Vec& probe,
                            const Vec& y_probe, size_t argmax) const
      EXCLUDES(cache_mutex_);

  /// Inserts `model` (deduplicating by fingerprint; evicting at count
  /// capacity or byte budget), memoizes memo_point -> slot, files the
  /// slot under bucket `argmax`, and files the slot into the region
  /// index with initial box [lo, hi] (a fingerprint-deduplicated
  /// re-insert unions its box into the existing one instead). `anchor`
  /// is the point the region is certified to contain — equal to
  /// memo_point on extraction/import, the persisted anchor on a disk
  /// reload. Exclusive (writer) lock. Flips *outcome to kEvictedRefetch
  /// when the fingerprint matches a region this session evicted earlier.
  /// Eviction spill records are appended to *spills for the caller to
  /// persist AFTER the lock is released (the store has its own mutex; no
  /// path holds both). Returns kNoSlot when the region was not cached
  /// (it alone exceeds the byte budget).
  size_t InsertRegion(api::LocalLinearModel model, uint64_t fingerprint,
                      const Vec& anchor, const Vec& memo_point,
                      size_t argmax, const Vec& lo, const Vec& hi,
                      CacheOutcome* outcome,
                      std::vector<store::RegionRecord>* spills) const
      EXCLUDES(cache_mutex_);

  /// Consults the persistent tier on a RAM miss: stabs the store's
  /// directory for records whose learned box covers x0, reads each
  /// candidate, and validates it against the 2-query pair the request
  /// already bought. A validated record is installed into the RAM cache
  /// (spills out as in InsertRegion), its model moved into *reloaded,
  /// and true returned — even when the byte budget kept it from being
  /// cached, the request is still served from it. False when nothing on
  /// disk explains the pair.
  bool ReloadFromStore(const Vec& x0, const Vec& y0, const Vec& probe,
                       const Vec& y_probe, size_t argmax,
                       api::LocalLinearModel* reloaded,
                       std::vector<store::RegionRecord>* spills) const
      EXCLUDES(cache_mutex_);

  /// Write-through: persists one region (by value parts) to the attached
  /// store, bumping store_appends when bytes were actually appended.
  /// No-op without a store. Never called with the cache lock held.
  void WriteThrough(const api::LocalLinearModel& model, uint64_t fingerprint,
                    const Vec& anchor, size_t argmax, const Vec& lo,
                    const Vec& hi) const EXCLUDES(cache_mutex_);

  /// Persists the eviction spill records collected under the writer lock
  /// (grown learned boxes going back to the log), then clears the vector.
  void PersistSpills(std::vector<store::RegionRecord>* spills) const
      EXCLUDES(cache_mutex_);

  /// Second-chance clock sweep; evicts one occupied region (never
  /// `protect_slot`; pass kNoSlot to allow any) and returns its (now
  /// vacant, unoccupied) slot — the caller either refills it or pushes
  /// it onto free_slots_. With a store attached the victim's learned box
  /// is exported into *spills so its growth survives. Requires the
  /// writer lock and at least one evictable occupied region.
  size_t EvictOneLocked(size_t protect_slot,
                        std::vector<store::RegionRecord>* spills) const
      REQUIRES(cache_mutex_);

  /// Removes one region from EVERY auxiliary structure — fingerprint
  /// map, point-memo keys, argmax buckets, region index — as one step,
  /// so no mutation path can leave a structure holding a dead slot.
  /// Requires the writer lock; the slot itself stays allocated for the
  /// caller to refill.
  void DropRegionAuxLocked(size_t slot) const REQUIRES(cache_mutex_);

  /// CHECKs the eviction/index coherence invariant: with the index on,
  /// every OCCUPIED cache slot is present in the index (index size ==
  /// occupied count). Called after every cache mutation; a violation is
  /// memory corruption in the making, so it aborts rather than degrades.
  void CheckAuxCoherenceLocked() const REQUIRES(cache_mutex_);

  /// Files `key` -> `slot` in the point memo and the slot's bounded
  /// per-region key list. Requires the writer lock.
  void FilePointLocked(const PointKey& key, size_t slot) const
      REQUIRES(cache_mutex_);

  /// Files `slot` under bucket `argmax` (once). Requires the writer lock.
  void FileBucketLocked(size_t slot, size_t argmax) const
      REQUIRES(cache_mutex_);

  bool RegionMatches(const api::LocalLinearModel& model, const Vec& x,
                     const Vec& y) const;

  /// ClearCache's body, for callers already holding the writer lock.
  /// Also clears evicted_fingerprints_ — after an invalidation, a
  /// re-extraction is a drift/plain refetch, not an eviction refetch.
  void ClearCacheLocked() const REQUIRES(cache_mutex_);

  /// Drift response: bumps the session epoch (mirrored into the store's
  /// when one is attached), counts every currently occupied region as a
  /// stale invalidation, and drops the whole RAM cache — a stale closed
  /// form must be re-extracted, never served. Takes the writer lock.
  void InvalidateStaleRegions() const EXCLUDES(cache_mutex_);

  const InterpretationEngine* const engine_;
  /// Co-owned engine aggregate counters. Sessions may legally outlive
  /// their engine (a shared_ptr session + outstanding futures past the
  /// engine's scope is a supported teardown order); shared ownership
  /// keeps the aggregate alive for the destructor's gauge subtraction
  /// instead of reaching through a possibly-dead engine_.
  const std::shared_ptr<StatCounters> engine_stats_;
  const api::PredictionApi* const api_;
  const size_t capacity_;     // region-count cap; 0 = unbounded
  const size_t byte_budget_;  // resident-byte cap; 0 = unbounded
  /// The persistent tier (nullptr = RAM-only). The pointee has its own
  /// mutex; sessions call it only OUTSIDE cache_mutex_, so the two locks
  /// never nest.
  store::RegionStore* const store_;

  mutable util::SharedMutex cache_mutex_;
  /// NOTE on shared-lock mutation: CachedRegion::hits is atomic, so the
  /// hit path bumps it under the READER lock — an access the analysis
  /// sees as a read of `regions_`, which is exactly the discipline:
  /// container shape changes only under the writer lock, per-slot atomics
  /// tick freely.
  mutable std::vector<CachedRegion> regions_ GUARDED_BY(cache_mutex_);
  mutable std::unordered_map<uint64_t, size_t> by_fingerprint_
      GUARDED_BY(cache_mutex_);
  /// argmax class at the region's anchor -> slots, scan order by hits.
  mutable std::unordered_map<size_t, std::vector<size_t>> by_argmax_
      GUARDED_BY(cache_mutex_);
  mutable std::unordered_map<PointKey, size_t, PairHash> point_memo_
      GUARDED_BY(cache_mutex_);
  /// Fingerprints of evicted regions, kept (bounded) to classify their
  /// re-extraction as kEvictedRefetch.
  mutable std::unordered_set<uint64_t> evicted_fingerprints_
      GUARDED_BY(cache_mutex_);
  mutable size_t clock_hand_ GUARDED_BY(cache_mutex_) = 0;
  /// Slots vacated by byte-budget eviction, reused before regions_
  /// grows. A listed slot is unoccupied (occupied == false, payload
  /// emptied) and absent from every auxiliary structure.
  mutable std::vector<size_t> free_slots_ GUARDED_BY(cache_mutex_);
  /// Hierarchical point-location index over the learned per-region
  /// bounding boxes (nullptr when EngineConfig::use_region_index is off
  /// or the cache is disabled). RegionIndex has no locks of its own: the
  /// POINTEE shares cache_mutex_ — Collect* run under the reader lock
  /// (no interior mutation), every mutator under the writer lock. The
  /// pointer itself is set once in the constructor and never reseated,
  /// so the `index_ != nullptr` checks read it lock-free.
  mutable std::unique_ptr<RegionIndex> index_ PT_GUARDED_BY(cache_mutex_);

  /// Current drift epoch; newly inserted regions are tagged with it.
  /// Atomic so the hot read (scan skip checks) stays under the reader
  /// lock; bumps happen inside InvalidateStaleRegions' writer section.
  mutable std::atomic<uint64_t> epoch_{0};
  /// Point-memo hit counter driving drift_check_interval cadence.
  mutable std::atomic<uint64_t> memo_hit_ticks_{0};

  mutable StatCounters stats_;
};

class InterpretationEngine {
 public:
  explicit InterpretationEngine(EngineConfig config = {});

  /// Blocks until every async task this engine submitted has finished.
  ~InterpretationEngine();

  /// Scoped checkout of a pooled per-request SolverWorkspace. The engine
  /// keeps one workspace per concurrently running request (in steady
  /// state: one per pool worker) and hands them out per request, so the
  /// solver's first-iteration buffer growth amortizes across cache
  /// misses instead of being re-paid by every request. Sessions lease on
  /// the extraction path; public so serving code built directly on the
  /// engine can amortize the same way. A leased workspace is exclusively
  /// owned until the lease dies (never shared across concurrent
  /// requests); it is Clear()ed — sizes reset, capacity kept — on
  /// release.
  class WorkspaceLease {
   public:
    explicit WorkspaceLease(const InterpretationEngine& engine)
        : engine_(&engine), workspace_(engine.AcquireWorkspace()) {}
    ~WorkspaceLease() { engine_->ReleaseWorkspace(workspace_); }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;

    SolverWorkspace* get() const { return workspace_; }

   private:
    const InterpretationEngine* engine_;
    SolverWorkspace* workspace_;
  };

  /// Pooled workspaces created so far: an upper bound on the engine's
  /// historical request concurrency, and the direct signal that
  /// sequential requests reuse one workspace (the size stays 1).
  size_t workspace_pool_size() const;

  /// Opens a serving session bound to `api` with its own endpoint-scoped
  /// cache. `cache_capacity` overrides EngineConfig::cache_capacity when
  /// > 0. The engine must outlive every use of the session; `api` must
  /// outlive the session's last request. Sessions are independent: open
  /// any number, on the same or distinct endpoints, from any thread.
  std::shared_ptr<EndpointSession> OpenSession(
      const api::PredictionApi& api, size_t cache_capacity = 0) const;

  /// OpenSession with the full option set: per-session capacity AND byte
  /// budget overrides, plus the persistent region store to attach (see
  /// SessionOptions for lifetimes and sharing rules).
  std::shared_ptr<EndpointSession> OpenSession(
      const api::PredictionApi& api, const SessionOptions& options) const;

  /// Aggregate counters across every session (legacy and OpenSession'd)
  /// this engine served.
  EngineStats stats() const;
  void ResetStats() const;

  const EngineConfig& config() const { return config_; }
  size_t num_threads() const { return pool_->num_threads(); }
  bool owns_pool() const { return owned_pool_ != nullptr; }

 private:
  friend class EndpointSession;

  /// Async-task bookkeeping so the destructor can drain safely.
  void BeginAsyncTask() const EXCLUDES(async_mutex_);
  void EndAsyncTask() const EXCLUDES(async_mutex_);

  /// Workspace pool backing WorkspaceLease: pops a free workspace or
  /// grows the pool by one. Release Clear()s and returns it; it CHECKs
  /// the workspace is not already free, so a double release (the only
  /// way one workspace could serve two concurrent requests) aborts
  /// rather than corrupting a request.
  SolverWorkspace* AcquireWorkspace() const EXCLUDES(workspace_mutex_);
  void ReleaseWorkspace(SolverWorkspace* workspace) const
      EXCLUDES(workspace_mutex_);

  const EngineConfig config_;
  // analyze: unguarded(set once in the constructor, before the engine is
  // visible to any other thread; immutable for the engine's lifetime)
  std::unique_ptr<util::ThreadPool> owned_pool_;  // only if num_threads > 0
  // analyze: unguarded(set once in the constructor alongside owned_pool_;
  // immutable for the engine's lifetime)
  util::ThreadPool* pool_ = nullptr;              // owned or shared

  mutable util::Mutex async_mutex_;
  mutable util::CondVar async_idle_;
  mutable size_t async_outstanding_ GUARDED_BY(async_mutex_) = 0;

  /// Declared lock order for the one class owning two locks: if a path
  /// ever needs both, the async lock comes first. No current path nests
  /// them (the analyzer's observed graph is edge-free); the declaration
  /// pins the policy for future code, and analyze_semantics.py rejects
  /// any observed nesting that contradicts or extends it undeclared.
  mutable util::Mutex workspace_mutex_ ACQUIRED_AFTER(async_mutex_);
  mutable std::vector<std::unique_ptr<SolverWorkspace>> workspaces_
      GUARDED_BY(workspace_mutex_);
  mutable std::vector<SolverWorkspace*> free_workspaces_
      GUARDED_BY(workspace_mutex_);

  /// Engine-wide aggregate, co-owned by every session it opened (see
  /// EndpointSession::engine_stats_): the counters outlive whichever
  /// side is destroyed last.
  const std::shared_ptr<EndpointSession::StatCounters> stats_ =
      std::make_shared<EndpointSession::StatCounters>();
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
