// InterpretationEngine: the asynchronous serving layer over OpenAPI.
//
// The paper's evaluation (and any production deployment of the method)
// interprets many (x0, c) requests against one or more endpoints. The
// engine exploits two structural facts:
//   1. requests whose x0 share a locally linear region — or that repeat an
//      x0 for different classes c — are answered by one extracted canonical
//      classifier (decision features are gauge-invariant), and
//   2. the requests are independent, so they shard across a thread pool.
//
// ## Sessions: the public surface
//
// The unit of serving is an ENDPOINT SESSION. `engine.OpenSession(api)`
// binds one `api::PredictionApi` (or `api::ApiReplicaSet`) and namespaces
// the region cache, point memo, and argmax buckets to that endpoint: one
// engine serves several distinct endpoints concurrently with zero
// cross-endpoint cache traffic and no ClearCache footgun. A session
// offers four request shapes:
//   * Interpret       — one request, synchronously.
//   * InterpretAll    — synchronous batch; blocks until every result.
//   * SubmitAsync     — one request as a std::future; returns immediately.
//   * InterpretStream — a batch whose results are consumed in completion
//     order while stragglers still run.
// All four return `EngineResponse`: the Result<Interpretation> plus the
// request's exact query consumption, how the cache served it, the shrink
// iterations, and wall latency — the serving envelope a metered client
// bills against.
//
// Each `EngineRequest` carries `RequestOptions` (query budget, deadline,
// CancelToken), enforced before every probe batch down in the solver's
// shrink loop — and, for deadlined/cancellable requests, between the
// latency-sized CHUNKS each batch is split into (probe_dispatch.h): the
// chunk size comes from a per-endpoint EWMA of observed per-row latency,
// so a request stops within one chunk (not one slow batch) of its
// deadline, a request whose first chunk is already predicted past the
// deadline is rejected with zero queries, and a request with
// max_queries = Q never issues more than Q API queries. A rejected
// request reports the exact count it did consume on the BudgetExhausted
// / DeadlineExceeded / Cancelled statuses — partial chunks included.
//
// The extraction (cache-miss) path runs each request out of a pooled
// SolverWorkspace (one per concurrently running request, checked out per
// request via WorkspaceLease), so the solver's first-iteration buffer
// growth is paid once per worker, not once per miss.
//
// Session caches are BOUNDED: `EngineConfig::cache_capacity` (or the
// OpenSession override) caps the region count, and inserts past capacity
// evict via a second-chance clock over per-region hit counters (hot
// regions survive, cold ones cycle out; evictions surface in
// EngineStats). Evicting a region also drops its point-memo keys and
// bucket entries, so a stale memo can never serve a dead slot.
//
// By default the engine BORROWS the process-wide util::SharedThreadPool
// rather than owning workers, so any number of engines / concurrent
// callers multiplex one pool sized to the hardware; setting
// EngineConfig::num_threads > 0 gives the engine a private pool of that
// size (deterministic scheduling for tests, isolation for benches).
//
// ## The per-session region cache
//
// Each worker consults the session's cache before paying the closed-form
// solve — hash indexes guarded by a shared_mutex:
//   * a point memo (hash of x0's raw bits -> region slot): a request whose
//     exact x0 was answered before costs ZERO API queries, any class;
//   * a fingerprint index (quantized canonical-model hash -> slot) that
//     deduplicates regions extracted concurrently by different workers;
//   * argmax buckets: candidate regions are grouped by the class they
//     predict at their anchor, so a request at a new x0 first tests the
//     bucket matching argmax(y0) — hottest regions first (each hit
//     promotes its region one step toward the bucket head, the classic
//     transpose heuristic) — and only falls back to the remaining regions
//     when the bucket misses (a region can span the decision boundary, so
//     the bucket key is a pruning heuristic, never a correctness filter);
//   * the REGION INDEX (region_index.h, EngineConfig::use_region_index,
//     default on): hierarchical point location over learned per-region
//     bounding boxes, the argmax partition as its top level. At
//     production cache sizes (10^5-10^6 regions) the bucketed scan above
//     still evaluates every cached model; the index stabs the boxes in
//     O(log n)-ish time, validates the few candidates exactly, and only
//     when none survives falls back to the full scan (then GROWS the
//     matched region's box, so repeat traffic stays logarithmic). The
//     index is decision-invisible: identical hit/miss outcomes and query
//     counts as the scan legs on every request.
// A request at a new x0 still validates cache candidates against the API
// output (2 batched queries) — black-box point location fundamentally
// needs the candidate test — but candidates are scanned under a shared
// lock, so readers proceed in parallel and only insertions serialize.
//
// Determinism: each request derives its probe RNG statelessly from
// (seed, request index) via Rng::MixSeed, so result CONTENT does not
// depend on the thread count, scheduling, or stream consumption order
// (cache-hit timing can differ, but every answer is exact either way —
// that is Theorem 2 plus gauge invariance).
//
// Query accounting is exact under concurrency and in every error path:
// the solver reports the queries it actually consumed (success, failure,
// budget rejection) via InterpretCounted, and session/engine totals are
// sums of those, matching the api's atomic query_count when the session
// is the api's only client — including when `api` is an ApiReplicaSet,
// whose per-replica counters sum to the same total.
//
// Lifetimes: the engine must outlive every use of its sessions (sessions
// borrow its pool and config); the api must outlive its session's last
// request. Workers keep the session itself alive via shared_ptr, and the
// engine's destructor blocks until every task it submitted has finished,
// so destroying the engine after abandoning a future/stream is safe;
// destroying the API before its session's outstanding work is not.
//
// The pre-session free-standing entry points (Interpret/InterpretAll/
// SubmitAsync/InterpretStream taking an api argument, plus engine-level
// cache_size/ClearCache) lived one release as deprecated shims and are
// now REMOVED: sessions are the only serving surface.

#ifndef OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
#define OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "interpret/openapi_method.h"
#include "interpret/region_index.h"
#include "interpret/request_options.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace openapi::interpret {

/// One unit of work: interpret the prediction at x0 for class c, under
/// the request's own budget / deadline / cancellation controls.
struct EngineRequest {
  Vec x0;
  size_t c = 0;
  RequestOptions options;
};

struct EngineConfig {
  /// Settings of the inner closed-form solver — including the
  /// latency-aware chunked probe dispatch (`openapi.dispatch`: EWMA
  /// alpha, conservative cold-endpoint seed, per-chunk time targets; see
  /// interpret/probe_dispatch.h). Deadlined requests served through the
  /// engine split their probe batches into chunks sized from the
  /// endpoint's observed per-row latency and re-check their controls
  /// between chunks, so deadline overshoot is bounded by one chunk.
  OpenApiConfig openapi;
  /// Worker threads. 0 (the default) borrows the process-wide
  /// util::SharedThreadPool; > 0 gives this engine a private pool of
  /// exactly that size.
  size_t num_threads = 0;
  /// Cap applied when this engine is the first to size the shared pool
  /// (util::DefaultThreadCount(max_threads)); 0 means uncapped — use all
  /// hardware threads. Ignored when num_threads > 0 or the shared pool
  /// already exists.
  size_t max_threads = 0;
  /// Master switch for the per-session region cache. With it off every
  /// session is a plain concurrent fan-out of OpenApiInterpreter (useful
  /// as the uncached baseline in benches).
  bool use_region_cache = true;
  /// Prune the candidate scan with argmax buckets + hit-frequency
  /// ordering. Off = the plain linear scan (bench baseline). Hit/miss
  /// behavior is identical either way. Consulted only when
  /// use_region_index is off — the index supersedes the bucket scan.
  bool bucket_candidates = true;
  /// Answer the candidate scan by hierarchical point location
  /// (region_index.h): stab the learned per-region bounding boxes in
  /// O(log n)-ish time, validate the few candidates exactly, and fall
  /// back to the full scan only when no candidate survives (first visit
  /// to an uncovered part of a region; the validated hit then grows the
  /// region's box, so repeat traffic stays logarithmic). Off preserves
  /// the linear/bucketed scan as the reference leg. DECISION-INVISIBLE:
  /// hit/miss outcomes and consumed query counts are identical either
  /// way on every request (the parity fuzz tests assert it).
  bool use_region_index = true;
  /// Default region capacity of each session's cache; 0 = unbounded.
  /// OpenSession can override per session. At capacity, inserts evict
  /// via a second-chance clock over per-region hit counters.
  size_t cache_capacity = 0;
  /// Match tolerance when validating a cached region model against the
  /// API's output (infinity norm over probabilities).
  double match_tol = 1e-9;
  /// Edge length of the hypercube the validation probe is drawn from.
  double validation_edge = 1e-6;
  /// Relative quantization of the region fingerprint used for dedup.
  double fingerprint_resolution = 1e-6;
};

/// Monotonic counters describing activity since construction (or the
/// last ResetStats). Available per session and aggregated across every
/// session on the engine. All updates are atomic.
struct EngineStats {
  uint64_t requests = 0;
  uint64_t point_memo_hits = 0;  // answered with 0 API queries
  uint64_t cache_hits = 0;       // answered with 2 API queries
  uint64_t cache_misses = 0;     // paid (or attempted) a full extraction
  uint64_t evictions = 0;        // regions displaced by capacity pressure
  uint64_t failures = 0;         // solver failures, bad requests, and
                                 // budget/deadline/cancel rejections
  uint64_t queries = 0;          // total API queries consumed
};

/// How the session cache served one request.
enum class CacheOutcome {
  kBypass,          // cache disabled, or rejected before the lookup
  kPointMemo,       // exact x0 repeat: 0 API queries
  kHit,             // candidate scan validated a cached region: 2 queries
  kMiss,            // paid (or attempted) a full extraction
  kEvictedRefetch,  // a miss that re-extracted a previously EVICTED region
};

/// The serving envelope around one request's answer: what a metered
/// client needs to bill, retry, or debug the request.
struct EngineResponse {
  /// The interpretation, or InvalidArgument / DidNotConverge /
  /// BudgetExhausted / DeadlineExceeded / Cancelled.
  Result<Interpretation> result;
  /// Exact API queries this request consumed — success or failure; never
  /// exceeds the request's max_queries.
  uint64_t queries = 0;
  CacheOutcome cache_outcome = CacheOutcome::kBypass;
  /// Hypercube-shrink iterations the solver attempted (0 on cache hits).
  size_t shrink_iterations = 0;
  /// Wall-clock latency of the request inside the engine, milliseconds.
  /// For SubmitAsync/InterpretStream this is measured from SUBMISSION,
  /// so it includes time spent queued behind other work — the latency a
  /// client actually observes.
  double latency_ms = 0.0;
};

/// A batch in flight on a session: responses are pulled in COMPLETION
/// order while later requests still run, so a consumer can render/forward
/// early answers without waiting for stragglers. Item::index identifies
/// the request; content per index is deterministic in (requests, seed)
/// even though the yield order is scheduling-dependent.
class SessionStream {
 public:
  struct Item {
    size_t index;  // position in the submitted request batch
    EngineResponse response;
  };

  /// Blocks until another request finishes and returns it; nullopt once
  /// all `total()` items have been delivered. Single-consumer.
  std::optional<Item> Next();

  size_t total() const { return total_; }
  size_t delivered() const { return delivered_; }

 private:
  friend class EndpointSession;

  struct Shared {
    util::Mutex mutex;
    util::CondVar ready;
    std::deque<Item> completed GUARDED_BY(mutex);
    /// Stable storage for workers: written once by InterpretStream before
    /// any task is submitted, immutable afterwards — read lock-free.
    std::vector<EngineRequest> requests;
  };

  std::shared_ptr<Shared> shared_;
  size_t total_ = 0;
  size_t delivered_ = 0;
};

class InterpretationEngine;

/// One endpoint's serving context: a region cache + point memo + argmax
/// buckets namespaced to a single PredictionApi, with a bounded capacity.
/// Obtained from InterpretationEngine::OpenSession; always held by
/// shared_ptr (async work keeps the session alive until it completes).
/// All methods are const and safe to call concurrently.
class EndpointSession
    : public std::enable_shared_from_this<EndpointSession> {
 public:
  EndpointSession(const EndpointSession&) = delete;
  EndpointSession& operator=(const EndpointSession&) = delete;

  /// Serves one request synchronously. `stream` disambiguates the probe
  /// RNG stream — pass distinct values for distinct requests under one
  /// seed (the batch entry points use the request index).
  EngineResponse Interpret(const EngineRequest& request, uint64_t seed,
                           uint64_t stream = 0) const;

  /// Serves every request, sharded across the engine's pool.
  /// responses[i] corresponds to requests[i] and uses RNG stream i.
  /// Deterministic in (requests, seed) regardless of thread count.
  std::vector<EngineResponse> InterpretAll(
      const std::vector<EngineRequest>& requests, uint64_t seed) const;

  /// Enqueues the request on the engine's pool and returns immediately.
  /// The response is identical to Interpret(request, seed, stream).
  std::future<EngineResponse> SubmitAsync(EngineRequest request,
                                          uint64_t seed,
                                          uint64_t stream = 0) const;

  /// Submits the whole batch and returns a stream that yields responses
  /// as they complete (request i uses RNG stream i, exactly like
  /// InterpretAll). The stream object may be dropped early; workers keep
  /// the shared state and this session alive.
  SessionStream InterpretStream(std::vector<EngineRequest> requests,
                                uint64_t seed) const;

  /// Warm-start hook: installs an already-known locally linear region —
  /// `model` valid around `anchor`, certified over the hypercube
  /// {x : |x_j - anchor_j| <= edge_length} — without paying extraction
  /// queries. This is how a tiered store (or a bench) reloads a cache of
  /// millions of regions: the model is fingerprinted, filed under the
  /// class it predicts at `anchor`, memoized for the anchor point, and
  /// filed into the region index with the certified hypercube as its
  /// initial learned box. Imported models are trusted exactly like
  /// extracted ones (an anchor repeat serves from the memo with zero
  /// validation queries; any other point still pays the 2-query
  /// validation pair), so the caller must import models that match the
  /// live endpoint. Pass canonical (column-0-pinned) models if later
  /// re-extractions of the same region should deduplicate against the
  /// import. Returns the region's cache slot, or SIZE_MAX when the
  /// engine's region cache is disabled. Thread-safe.
  size_t ImportRegion(api::LocalLinearModel model, const Vec& anchor,
                      double edge_length) const;

  const api::PredictionApi& api() const { return *api_; }
  size_t cache_size() const EXCLUDES(cache_mutex_);
  /// Region capacity of this session's cache; 0 = unbounded.
  size_t cache_capacity() const { return capacity_; }
  /// This session's own counters (the engine aggregates all sessions).
  EngineStats stats() const;
  void ResetStats() const;
  /// Drops this session's cached regions, point memo, argmax buckets,
  /// and eviction bookkeeping. Safe to race with in-flight requests:
  /// they re-extract as needed.
  void ClearCache() const EXCLUDES(cache_mutex_);

 private:
  friend class InterpretationEngine;

  using PointKey = std::pair<uint64_t, uint64_t>;

  struct CachedRegion {
    api::LocalLinearModel model;
    uint64_t fingerprint = 0;
    /// Hit counter feeding the second-chance eviction clock: bumped on
    /// every memo/scan hit, halved each time the clock passes. Atomic so
    /// hits under the shared (reader) lock need no writer upgrade.
    std::atomic<uint32_t> hits{0};
    /// Point-memo keys filed under this slot (bounded FIFO), removed
    /// from the memo when the region is evicted.
    std::vector<PointKey> points;
    /// Argmax bucket keys this slot is filed under.
    std::vector<size_t> bucket_keys;

    CachedRegion(api::LocalLinearModel m, uint64_t fp)
        : model(std::move(m)), fingerprint(fp) {}
    CachedRegion(CachedRegion&& other) noexcept
        : model(std::move(other.model)),
          fingerprint(other.fingerprint),
          hits(other.hits.load(std::memory_order_relaxed)),
          points(std::move(other.points)),
          bucket_keys(std::move(other.bucket_keys)) {}
    CachedRegion& operator=(CachedRegion&& other) noexcept {
      model = std::move(other.model);
      fingerprint = other.fingerprint;
      hits.store(other.hits.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      points = std::move(other.points);
      bucket_keys = std::move(other.bucket_keys);
      return *this;
    }
  };

  struct PairHash {
    size_t operator()(const PointKey& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// Per-session monotonic counters; every bump is mirrored into the
  /// engine's aggregate.
  struct StatCounters {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> point_memo_hits{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> queries{0};
  };

  EndpointSession(const InterpretationEngine* engine,
                  const api::PredictionApi* api, size_t capacity);

  static EngineStats Snapshot(const StatCounters& counters);
  static void Reset(StatCounters& counters);

  /// 128-bit hash of x0's raw double bits; collision odds are negligible,
  /// so point-memo hits never revalidate against the API.
  static PointKey PointKeyOf(const Vec& x0);

  void Bump(std::atomic<uint64_t> StatCounters::* counter,
            uint64_t n = 1) const;

  Result<Interpretation> Serve(const EngineRequest& request, uint64_t seed,
                               uint64_t stream, uint64_t* consumed,
                               CacheOutcome* outcome,
                               size_t* iterations) const;

  Result<Interpretation> InterpretCached(const Vec& x0, size_t c,
                                         const RequestOptions& options,
                                         util::Rng* rng, uint64_t* consumed,
                                         CacheOutcome* outcome,
                                         size_t* iterations) const;

  /// Returns the slot whose model explains (x0, y0) and (probe, y_probe),
  /// or SIZE_MAX. Takes the shared (reader) lock itself. `argmax` is the
  /// predicted class at x0 (from y0) selecting the bucket (or index
  /// forest) scanned first. With use_region_index on, candidates come
  /// from the index's stabbing query and the full scan runs only when
  /// none of them validates — the decision (and therefore every
  /// downstream query count) is identical to the scan legs.
  size_t FindMatchingRegion(const Vec& x0, const Vec& y0, const Vec& probe,
                            const Vec& y_probe, size_t argmax) const
      EXCLUDES(cache_mutex_);

  /// Inserts `model` (deduplicating by fingerprint; evicting at
  /// capacity), memoizes x0 -> slot, files the slot under bucket
  /// `argmax`, and files the slot into the region index with initial box
  /// {x : |x_j - x0_j| <= edge_length} (the solver's final certified
  /// hypercube; a fingerprint-deduplicated re-extraction unions its
  /// hypercube into the existing box instead). Exclusive (writer) lock.
  /// Flips *outcome to kEvictedRefetch when the fingerprint matches a
  /// region this session evicted earlier.
  size_t InsertRegion(api::LocalLinearModel model, uint64_t fingerprint,
                      const Vec& x0, size_t argmax, double edge_length,
                      CacheOutcome* outcome) const EXCLUDES(cache_mutex_);

  /// Second-chance clock sweep; evicts one region and returns its (now
  /// vacant) slot. Requires the writer lock and a full cache.
  size_t EvictOneLocked() const REQUIRES(cache_mutex_);

  /// Removes one region from EVERY auxiliary structure — fingerprint
  /// map, point-memo keys, argmax buckets, region index — as one step,
  /// so no mutation path can leave a structure holding a dead slot.
  /// Requires the writer lock; the slot itself stays allocated for the
  /// caller to refill.
  void DropRegionAuxLocked(size_t slot) const REQUIRES(cache_mutex_);

  /// CHECKs the eviction/index coherence invariant: with the index on,
  /// every cache slot is present in the index (index size == cache
  /// size). Called after every cache mutation; a violation is memory
  /// corruption in the making, so it aborts rather than degrades.
  void CheckAuxCoherenceLocked() const REQUIRES(cache_mutex_);

  /// Files `key` -> `slot` in the point memo and the slot's bounded
  /// per-region key list. Requires the writer lock.
  void FilePointLocked(const PointKey& key, size_t slot) const
      REQUIRES(cache_mutex_);

  /// Files `slot` under bucket `argmax` (once). Requires the writer lock.
  void FileBucketLocked(size_t slot, size_t argmax) const
      REQUIRES(cache_mutex_);

  bool RegionMatches(const api::LocalLinearModel& model, const Vec& x,
                     const Vec& y) const;

  const InterpretationEngine* engine_;
  const api::PredictionApi* api_;
  const size_t capacity_;  // 0 = unbounded

  mutable util::SharedMutex cache_mutex_;
  /// NOTE on shared-lock mutation: CachedRegion::hits is atomic, so the
  /// hit path bumps it under the READER lock — an access the analysis
  /// sees as a read of `regions_`, which is exactly the discipline:
  /// container shape changes only under the writer lock, per-slot atomics
  /// tick freely.
  mutable std::vector<CachedRegion> regions_ GUARDED_BY(cache_mutex_);
  mutable std::unordered_map<uint64_t, size_t> by_fingerprint_
      GUARDED_BY(cache_mutex_);
  /// argmax class at the region's anchor -> slots, scan order by hits.
  mutable std::unordered_map<size_t, std::vector<size_t>> by_argmax_
      GUARDED_BY(cache_mutex_);
  mutable std::unordered_map<PointKey, size_t, PairHash> point_memo_
      GUARDED_BY(cache_mutex_);
  /// Fingerprints of evicted regions, kept (bounded) to classify their
  /// re-extraction as kEvictedRefetch.
  mutable std::unordered_set<uint64_t> evicted_fingerprints_
      GUARDED_BY(cache_mutex_);
  mutable size_t clock_hand_ GUARDED_BY(cache_mutex_) = 0;
  /// Hierarchical point-location index over the learned per-region
  /// bounding boxes (nullptr when EngineConfig::use_region_index is off
  /// or the cache is disabled). RegionIndex has no locks of its own: the
  /// POINTEE shares cache_mutex_ — Collect* run under the reader lock
  /// (no interior mutation), every mutator under the writer lock. The
  /// pointer itself is set once in the constructor and never reseated,
  /// so the `index_ != nullptr` checks read it lock-free.
  mutable std::unique_ptr<RegionIndex> index_ PT_GUARDED_BY(cache_mutex_);

  mutable StatCounters stats_;
};

class InterpretationEngine {
 public:
  explicit InterpretationEngine(EngineConfig config = {});

  /// Blocks until every async task this engine submitted has finished.
  ~InterpretationEngine();

  /// Scoped checkout of a pooled per-request SolverWorkspace. The engine
  /// keeps one workspace per concurrently running request (in steady
  /// state: one per pool worker) and hands them out per request, so the
  /// solver's first-iteration buffer growth amortizes across cache
  /// misses instead of being re-paid by every request. Sessions lease on
  /// the extraction path; public so serving code built directly on the
  /// engine can amortize the same way. A leased workspace is exclusively
  /// owned until the lease dies (never shared across concurrent
  /// requests); it is Clear()ed — sizes reset, capacity kept — on
  /// release.
  class WorkspaceLease {
   public:
    explicit WorkspaceLease(const InterpretationEngine& engine)
        : engine_(&engine), workspace_(engine.AcquireWorkspace()) {}
    ~WorkspaceLease() { engine_->ReleaseWorkspace(workspace_); }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;

    SolverWorkspace* get() const { return workspace_; }

   private:
    const InterpretationEngine* engine_;
    SolverWorkspace* workspace_;
  };

  /// Pooled workspaces created so far: an upper bound on the engine's
  /// historical request concurrency, and the direct signal that
  /// sequential requests reuse one workspace (the size stays 1).
  size_t workspace_pool_size() const;

  /// Opens a serving session bound to `api` with its own endpoint-scoped
  /// cache. `cache_capacity` overrides EngineConfig::cache_capacity when
  /// > 0. The engine must outlive every use of the session; `api` must
  /// outlive the session's last request. Sessions are independent: open
  /// any number, on the same or distinct endpoints, from any thread.
  std::shared_ptr<EndpointSession> OpenSession(
      const api::PredictionApi& api, size_t cache_capacity = 0) const;

  /// Aggregate counters across every session (legacy and OpenSession'd)
  /// this engine served.
  EngineStats stats() const;
  void ResetStats() const;

  const EngineConfig& config() const { return config_; }
  size_t num_threads() const { return pool_->num_threads(); }
  bool owns_pool() const { return owned_pool_ != nullptr; }

 private:
  friend class EndpointSession;

  /// Async-task bookkeeping so the destructor can drain safely.
  void BeginAsyncTask() const EXCLUDES(async_mutex_);
  void EndAsyncTask() const EXCLUDES(async_mutex_);

  /// Workspace pool backing WorkspaceLease: pops a free workspace or
  /// grows the pool by one. Release Clear()s and returns it; it CHECKs
  /// the workspace is not already free, so a double release (the only
  /// way one workspace could serve two concurrent requests) aborts
  /// rather than corrupting a request.
  SolverWorkspace* AcquireWorkspace() const EXCLUDES(workspace_mutex_);
  void ReleaseWorkspace(SolverWorkspace* workspace) const
      EXCLUDES(workspace_mutex_);

  EngineConfig config_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  // only if num_threads > 0
  util::ThreadPool* pool_ = nullptr;              // owned or shared

  mutable util::Mutex async_mutex_;
  mutable util::CondVar async_idle_;
  mutable size_t async_outstanding_ GUARDED_BY(async_mutex_) = 0;

  mutable util::Mutex workspace_mutex_;
  mutable std::vector<std::unique_ptr<SolverWorkspace>> workspaces_
      GUARDED_BY(workspace_mutex_);
  mutable std::vector<SolverWorkspace*> free_workspaces_
      GUARDED_BY(workspace_mutex_);

  mutable EndpointSession::StatCounters stats_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
