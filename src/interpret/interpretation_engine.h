// InterpretationEngine: the concurrent throughput pipeline over OpenAPI.
//
// The paper's evaluation (and any production deployment of the method)
// interprets many (x0, c) requests against one endpoint. Running them one
// at a time wastes two structural facts:
//   1. requests whose x0 share a locally linear region — or that repeat an
//      x0 for different classes c — are answered by one extracted canonical
//      classifier (decision features are gauge-invariant), and
//   2. the requests are independent, so they shard across a thread pool.
//
// The engine does both. Requests are distributed over util::ThreadPool;
// each worker consults a shared region cache before paying the closed-form
// solve. The cache replaces extract::CachedInterpreter's linear scan with
// two hash indexes guarded by a shared_mutex:
//   * a point memo (hash of x0's raw bits -> region slot): a request whose
//     exact x0 was answered before costs ZERO API queries, any class;
//   * a fingerprint index (quantized canonical-model hash -> slot) that
//     deduplicates regions extracted concurrently by different workers.
// A request at a new x0 still validates cache candidates against the API
// output (2 batched queries) — black-box point location fundamentally
// needs the candidate test — but candidates are scanned under a shared
// lock, so readers proceed in parallel and only insertions serialize.
//
// Determinism: each request derives its probe RNG statelessly from
// (seed, request index) via Rng::MixSeed, so results do not depend on the
// thread count or scheduling order (cache-hit timing can differ, but every
// answer is exact either way — that is Theorem 2 plus gauge invariance).
//
// Query accounting is exact under concurrency: interpreters report locally
// counted queries, and the engine's totals are sums of those, matching the
// api's atomic query_count when the engine is the api's only client.

#ifndef OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
#define OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interpret/openapi_method.h"
#include "util/thread_pool.h"

namespace openapi::interpret {

/// One unit of work: interpret the prediction at x0 for class c.
struct EngineRequest {
  Vec x0;
  size_t c = 0;
};

struct EngineConfig {
  /// Settings of the inner closed-form solver.
  OpenApiConfig openapi;
  /// Worker threads; 0 means util::DefaultThreadCount().
  size_t num_threads = 0;
  /// Master switch for the shared region cache. With it off the engine is
  /// a plain concurrent fan-out of OpenApiInterpreter (useful as the
  /// uncached baseline in benches).
  bool use_region_cache = true;
  /// Match tolerance when validating a cached region model against the
  /// API's output (infinity norm over probabilities).
  double match_tol = 1e-9;
  /// Edge length of the hypercube the validation probe is drawn from.
  double validation_edge = 1e-6;
  /// Relative quantization of the region fingerprint used for dedup.
  double fingerprint_resolution = 1e-6;
};

/// Monotonic counters describing engine activity since construction (or
/// the last ResetStats). All updates are atomic.
struct EngineStats {
  uint64_t requests = 0;
  uint64_t point_memo_hits = 0;  // answered with 0 API queries
  uint64_t cache_hits = 0;       // answered with 2 API queries
  uint64_t cache_misses = 0;     // paid a full extraction
  uint64_t failures = 0;         // solver did not converge / bad request
  uint64_t queries = 0;          // total API queries consumed
};

class InterpretationEngine {
 public:
  explicit InterpretationEngine(EngineConfig config = {});

  /// Interprets every request against `api`, sharded across the engine's
  /// thread pool. results[i] corresponds to requests[i]. Deterministic in
  /// (requests, seed) regardless of thread count. Safe to call from
  /// multiple threads; all calls share the region cache.
  std::vector<Result<Interpretation>> InterpretAll(
      const api::PredictionApi& api,
      const std::vector<EngineRequest>& requests, uint64_t seed) const;

  /// Single-request entry point sharing the same cache (request index
  /// doubles as the RNG stream, so pass distinct `stream` values for
  /// distinct requests).
  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c, uint64_t seed,
                                   uint64_t stream = 0) const;

  size_t cache_size() const;
  EngineStats stats() const;
  void ResetStats() const;
  /// Drops all cached regions and the point memo (e.g. when re-targeting
  /// the engine at a different endpoint).
  void ClearCache() const;

  const EngineConfig& config() const { return config_; }
  size_t num_threads() const { return pool_->num_threads(); }

 private:
  struct CachedRegion {
    api::LocalLinearModel model;
    uint64_t fingerprint = 0;
  };

  /// 128-bit hash of x0's raw double bits; collision odds are negligible,
  /// so point-memo hits never revalidate against the API.
  static std::pair<uint64_t, uint64_t> PointKey(const Vec& x0);

  Result<Interpretation> InterpretCached(const api::PredictionApi& api,
                                         const Vec& x0, size_t c,
                                         util::Rng* rng) const;

  /// Returns the slot whose model explains (x0, y0) and (probe, y_probe),
  /// or SIZE_MAX. Shared (reader) lock.
  size_t FindMatchingRegion(const Vec& x0, const Vec& y0, const Vec& probe,
                            const Vec& y_probe) const;

  /// Inserts `model` (deduplicating by fingerprint) and memoizes x0 ->
  /// slot. Exclusive (writer) lock. Returns the slot.
  size_t InsertRegion(api::LocalLinearModel model, uint64_t fingerprint,
                      const Vec& x0) const;

  bool RegionMatches(const api::LocalLinearModel& model, const Vec& x,
                     const Vec& y) const;

  EngineConfig config_;
  mutable std::unique_ptr<util::ThreadPool> pool_;

  mutable std::shared_mutex cache_mutex_;
  mutable std::vector<CachedRegion> regions_;
  mutable std::unordered_map<uint64_t, size_t> by_fingerprint_;
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  mutable std::unordered_map<std::pair<uint64_t, uint64_t>, size_t, PairHash>
      point_memo_;

  mutable std::atomic<uint64_t> stat_requests_{0};
  mutable std::atomic<uint64_t> stat_point_memo_hits_{0};
  mutable std::atomic<uint64_t> stat_cache_hits_{0};
  mutable std::atomic<uint64_t> stat_cache_misses_{0};
  mutable std::atomic<uint64_t> stat_failures_{0};
  mutable std::atomic<uint64_t> stat_queries_{0};
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_INTERPRETATION_ENGINE_H_
