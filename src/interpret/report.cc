#include "interpret/report.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace openapi::interpret {

InterpretationReport BuildReport(const Interpretation& interpretation,
                                 const Vec& x0, size_t c, const Vec& y,
                                 size_t top_k) {
  OPENAPI_CHECK_EQ(interpretation.dc.size(), x0.size());
  OPENAPI_CHECK_LT(c, y.size());
  InterpretationReport report;
  report.predicted_class = c;
  report.predicted_probability = y[c];
  report.queries = interpretation.queries;
  report.iterations = interpretation.iterations;

  std::vector<FeatureContribution> all;
  all.reserve(x0.size());
  double positive_mass = 0.0, total_mass = 0.0;
  for (size_t j = 0; j < x0.size(); ++j) {
    double w = interpretation.dc[j];
    all.push_back(FeatureContribution{j, w, x0[j]});
    total_mass += std::fabs(w);
    if (w > 0) positive_mass += w;
  }
  report.support_mass = total_mass > 0 ? positive_mass / total_mass : 0.0;

  std::sort(all.begin(), all.end(),
            [](const FeatureContribution& a, const FeatureContribution& b) {
              return a.weight > b.weight;
            });
  for (const FeatureContribution& fc : all) {
    if (fc.weight <= 0 || report.supporting.size() >= top_k) break;
    report.supporting.push_back(fc);
  }
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->weight >= 0 || report.opposing.size() >= top_k) break;
    report.opposing.push_back(*it);
  }
  return report;
}

namespace {

std::string FeatureName(size_t index, size_t width) {
  if (width == 0) return "f" + std::to_string(index);
  return util::StrFormat("pixel(%zu,%zu)", index / width, index % width);
}

}  // namespace

std::string RenderReport(const InterpretationReport& report, size_t width) {
  std::ostringstream os;
  os << util::StrFormat(
      "prediction: class %zu (p = %.4f), interpreted via %zu API queries, "
      "%zu iteration(s)\n",
      report.predicted_class, report.predicted_probability, report.queries,
      report.iterations);
  os << util::StrFormat("support mass: %.1f%% of total |weight|\n",
                        100.0 * report.support_mass);
  os << "top supporting features:\n";
  for (const FeatureContribution& fc : report.supporting) {
    os << util::StrFormat("  %-14s weight %+.5f (value %.3f)\n",
                          FeatureName(fc.feature, width).c_str(), fc.weight,
                          fc.value);
  }
  if (report.supporting.empty()) os << "  (none)\n";
  os << "top opposing features:\n";
  for (const FeatureContribution& fc : report.opposing) {
    os << util::StrFormat("  %-14s weight %+.5f (value %.3f)\n",
                          FeatureName(fc.feature, width).c_str(), fc.weight,
                          fc.value);
  }
  if (report.opposing.empty()) os << "  (none)\n";
  return os.str();
}

}  // namespace openapi::interpret
