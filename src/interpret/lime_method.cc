#include "interpret/lime_method.h"

#include "linalg/least_squares.h"

namespace openapi::interpret {

LimeInterpreter::LimeInterpreter(LimeConfig config) : config_(config) {
  OPENAPI_CHECK_GT(config_.perturbation_distance, 0.0);
  OPENAPI_CHECK_GE(config_.ridge_lambda, 0.0);
}

Result<Interpretation> LimeInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  const size_t d = api.dim();
  const size_t num_classes = api.num_classes();
  if (x0.size() != d) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= num_classes || num_classes < 2) {
    return Status::InvalidArgument("bad class configuration");
  }
  const size_t n =
      config_.num_samples > 0 ? config_.num_samples : 2 * (d + 1);
  if (n < d + 1) {
    return Status::InvalidArgument(
        "LIME needs at least d+1 perturbed samples");
  }
  std::vector<Vec> probes =
      SampleHypercube(x0, config_.perturbation_distance, n, rng);
  // x0 and all n perturbed samples go out as one batched request.
  std::vector<Vec> batch;
  batch.reserve(n + 1);
  batch.push_back(x0);
  for (const Vec& p : probes) batch.push_back(p);
  // analyze: direct-probe(published LIME baseline predates the
  // dispatcher; one raw batch keeps its query count comparable)
  std::vector<Vec> predictions = api.PredictBatch(batch);

  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);

  if (config_.regressor == LimeRegressor::kLinearRegression) {
    // Ordinary least squares over [1, X]; one QR shared by all pairs.
    Matrix a = BuildCoefficientMatrix(x0, probes);
    OPENAPI_ASSIGN_OR_RETURN(linalg::QrDecomposition qr,
                             linalg::QrDecomposition::Factor(a));
    for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
      if (c_prime == c) continue;
      OPENAPI_ASSIGN_OR_RETURN(Vec rhs,
                               BuildLogOddsRhs(predictions, c, c_prime));
      linalg::LeastSquaresSolution solution = qr.Solve(rhs);
      CoreParameters pair;
      pair.b = solution.x[0];
      pair.d.assign(solution.x.begin() + 1, solution.x.end());
      pairs.push_back(std::move(pair));
    }
  } else {
    // Ridge with unpenalized intercept: center features and targets, solve
    // the penalized system on the centered design, recover the intercept.
    const size_t rows = probes.size() + 1;
    Vec mean(d, 0.0);
    linalg::Axpy(1.0, x0, &mean);
    for (const Vec& p : probes) linalg::Axpy(1.0, p, &mean);
    for (double& m : mean) m /= static_cast<double>(rows);

    Matrix centered(rows, d);
    for (size_t j = 0; j < d; ++j) centered(0, j) = x0[j] - mean[j];
    for (size_t i = 0; i < probes.size(); ++i) {
      for (size_t j = 0; j < d; ++j) {
        centered(i + 1, j) = probes[i][j] - mean[j];
      }
    }
    for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
      if (c_prime == c) continue;
      OPENAPI_ASSIGN_OR_RETURN(Vec rhs,
                               BuildLogOddsRhs(predictions, c, c_prime));
      double rhs_mean = 0.0;
      for (double v : rhs) rhs_mean += v;
      rhs_mean /= static_cast<double>(rhs.size());
      Vec rhs_centered(rhs.size());
      for (size_t i = 0; i < rhs.size(); ++i) {
        rhs_centered[i] = rhs[i] - rhs_mean;
      }
      OPENAPI_ASSIGN_OR_RETURN(
          Vec coef,
          linalg::SolveRidge(centered, rhs_centered, config_.ridge_lambda));
      CoreParameters pair;
      pair.d = coef;
      pair.b = rhs_mean - linalg::Dot(coef, mean);
      pairs.push_back(std::move(pair));
    }
  }

  Interpretation out;
  out.dc = CombinePairEstimates(pairs);
  out.pairs = std::move(pairs);
  out.probes = std::move(probes);
  out.iterations = 1;
  out.edge_length = config_.perturbation_distance;
  out.queries = 1 + n;  // exact: x0 plus the n perturbed samples
  return out;
}

}  // namespace openapi::interpret
