#include "interpret/gradient_methods.h"

#include <cmath>

namespace openapi::interpret {

const char* GradientAttributionName(GradientAttribution method) {
  switch (method) {
    case GradientAttribution::kSaliencyMap:
      return "SaliencyMaps";
    case GradientAttribution::kGradientTimesInput:
      return "Gradient*Input";
    case GradientAttribution::kIntegratedGradients:
      return "IntegratedGradient";
    case GradientAttribution::kSmoothGrad:
      return "SmoothGrad";
  }
  return "Unknown";
}

Vec ComputeGradientAttribution(
    const api::PlmOracle& oracle, const Vec& x, size_t c,
    GradientAttribution method,
    const IntegratedGradientsConfig& ig_config,
    const SmoothGradConfig& sg_config) {
  switch (method) {
    case GradientAttribution::kSaliencyMap: {
      Vec grad = api::ProbabilityGradient(oracle.LocalModelAt(x), x, c);
      for (double& g : grad) g = std::fabs(g);
      return grad;
    }
    case GradientAttribution::kGradientTimesInput: {
      Vec grad = api::ProbabilityGradient(oracle.LocalModelAt(x), x, c);
      return linalg::Hadamard(grad, x);
    }
    case GradientAttribution::kIntegratedGradients: {
      const size_t d = x.size();
      Vec baseline = ig_config.baseline.empty() ? Vec(d, 0.0)
                                                : ig_config.baseline;
      OPENAPI_CHECK_EQ(baseline.size(), d);
      const size_t steps = std::max<size_t>(1, ig_config.num_steps);
      Vec grad_sum(d, 0.0);
      // Midpoint Riemann sum over the straight path baseline -> x. The
      // local model is re-queried at every step because the path may cross
      // region boundaries (that is the point of the method).
      for (size_t s = 0; s < steps; ++s) {
        double t = (static_cast<double>(s) + 0.5) /
                   static_cast<double>(steps);
        Vec point(d);
        for (size_t j = 0; j < d; ++j) {
          point[j] = baseline[j] + t * (x[j] - baseline[j]);
        }
        Vec grad =
            api::ProbabilityGradient(oracle.LocalModelAt(point), point, c);
        linalg::Axpy(1.0, grad, &grad_sum);
      }
      Vec out(d);
      for (size_t j = 0; j < d; ++j) {
        out[j] = (x[j] - baseline[j]) * grad_sum[j] /
                 static_cast<double>(steps);
      }
      return out;
    }
    case GradientAttribution::kSmoothGrad: {
      // Average the exact gradient over Gaussian-noised copies of x. The
      // seed lives in the config so two calls with the same config agree.
      const size_t d = x.size();
      util::Rng noise_rng(sg_config.seed);
      const size_t samples = std::max<size_t>(1, sg_config.num_samples);
      Vec grad_sum(d, 0.0);
      for (size_t s = 0; s < samples; ++s) {
        Vec noisy = x;
        for (double& v : noisy) {
          v += noise_rng.Gaussian(0.0, sg_config.noise_stddev);
        }
        Vec grad =
            api::ProbabilityGradient(oracle.LocalModelAt(noisy), noisy, c);
        linalg::Axpy(1.0, grad, &grad_sum);
      }
      for (double& v : grad_sum) v /= static_cast<double>(samples);
      return grad_sum;
    }
  }
  return Vec(x.size(), 0.0);
}

GradientInterpreter::GradientInterpreter(const api::PlmOracle* oracle,
                                         GradientAttribution method,
                                         IntegratedGradientsConfig ig_config,
                                         SmoothGradConfig sg_config)
    : oracle_(oracle),
      method_(method),
      ig_config_(std::move(ig_config)),
      sg_config_(sg_config) {
  OPENAPI_CHECK(oracle != nullptr);
}

Result<Interpretation> GradientInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* /*rng*/) const {
  if (x0.size() != api.dim()) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= api.num_classes()) {
    return Status::InvalidArgument("class index out of range");
  }
  Interpretation out;
  out.dc = ComputeGradientAttribution(*oracle_, x0, c, method_, ig_config_,
                                      sg_config_);
  out.iterations = 1;
  out.queries = 0;  // white-box: no API traffic
  return out;
}

}  // namespace openapi::interpret
