#include "interpret/zoo_method.h"

namespace openapi::interpret {

ZooInterpreter::ZooInterpreter(ZooConfig config) : config_(config) {
  OPENAPI_CHECK_GT(config_.perturbation_distance, 0.0);
}

Result<Interpretation> ZooInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* /*rng*/) const {
  const size_t d = api.dim();
  const size_t num_classes = api.num_classes();
  if (x0.size() != d) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= num_classes || num_classes < 2) {
    return Status::InvalidArgument("bad class configuration");
  }
  const double h = config_.perturbation_distance;

  // analyze: direct-probe(published ZOO baseline predates the dispatcher
  // and is measured on its own raw query count; accounting is external)
  const Vec y0 = api.Predict(x0);

  // Probe both directions along every axis; predictions are reused for all
  // class pairs (2d queries total, as in the published ZOO). The whole
  // probe set goes out as one batched request.
  std::vector<Vec> probes;
  probes.reserve(2 * d);
  for (size_t j = 0; j < d; ++j) {
    Vec plus = x0;
    plus[j] += h;
    probes.push_back(std::move(plus));
    Vec minus = x0;
    minus[j] -= h;
    probes.push_back(std::move(minus));
  }
  // analyze: direct-probe(published ZOO baseline; single raw batch as in
  // the original method, outside the dispatcher's retry/chunk contract)
  std::vector<Vec> batch_pred = api.PredictBatch(probes);
  std::vector<Vec> plus_pred(d), minus_pred(d);
  for (size_t j = 0; j < d; ++j) {
    plus_pred[j] = std::move(batch_pred[2 * j]);
    minus_pred[j] = std::move(batch_pred[2 * j + 1]);
  }

  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == c) continue;
    CoreParameters pair;
    pair.d.resize(d);
    for (size_t j = 0; j < d; ++j) {
      OPENAPI_ASSIGN_OR_RETURN(double f_plus,
                               LogOdds(plus_pred[j], c, c_prime));
      OPENAPI_ASSIGN_OR_RETURN(double f_minus,
                               LogOdds(minus_pred[j], c, c_prime));
      pair.d[j] = (f_plus - f_minus) / (2.0 * h);
    }
    // B from Eq. 2 at x0: B = ln(y_c/y_{c'}) - D^T x0.
    OPENAPI_ASSIGN_OR_RETURN(double f0, LogOdds(y0, c, c_prime));
    pair.b = f0 - linalg::Dot(pair.d, x0);
    pairs.push_back(std::move(pair));
  }

  Interpretation out;
  out.dc = CombinePairEstimates(pairs);
  out.pairs = std::move(pairs);
  out.probes = std::move(probes);
  out.iterations = 1;
  out.edge_length = h;
  out.queries = 1 + 2 * d;  // exact: x0 plus two probes per dimension
  return out;
}

}  // namespace openapi::interpret
