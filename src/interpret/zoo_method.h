// ZOO baseline (Chen et al. [7], adapted per Sec. V).
//
// ZOO estimates gradients by zeroth-order symmetric difference quotients.
// The paper's adaptation targets f(x) = ln(y_c / y_{c'}), whose exact
// gradient inside a locally linear region is D_{c,c'} (Eq. 2). For each
// axis j, ZOO probes x0 ± h e_j and estimates
//   D_{c,c'}[j] ≈ (f(x0 + h e_j) - f(x0 - h e_j)) / (2h).
// The 2d probe predictions are shared across all C-1 class pairs. The bias
// term B_{c,c'} is recovered from Eq. 2 at x0 itself.

#ifndef OPENAPI_INTERPRET_ZOO_METHOD_H_
#define OPENAPI_INTERPRET_ZOO_METHOD_H_

#include "interpret/decision_features.h"

namespace openapi::interpret {

struct ZooConfig {
  double perturbation_distance = 1e-4;  // h; the paper sweeps 1e-8/1e-4/1e-2
};

class ZooInterpreter : public BlackBoxInterpreter {
 public:
  explicit ZooInterpreter(ZooConfig config = {});

  const char* name() const override { return "ZOO"; }

  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

  const ZooConfig& config() const { return config_; }

 private:
  ZooConfig config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_ZOO_METHOD_H_
