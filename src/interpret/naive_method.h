// The naive method (Sec. IV-B): solve the *determined* (d+1)x(d+1) system
// Ω_{d+1} built from x0 and d probes at a fixed, user-chosen perturbation
// distance h. Exact only in the ideal case where every probe shares x0's
// locally linear region; Theorem 1 shows it is wrong with probability 1
// otherwise. Included as the paper's own strawman baseline (N(h) in
// Figs. 5-7).

#ifndef OPENAPI_INTERPRET_NAIVE_METHOD_H_
#define OPENAPI_INTERPRET_NAIVE_METHOD_H_

#include "interpret/decision_features.h"

namespace openapi::interpret {

struct NaiveConfig {
  double perturbation_distance = 1e-4;  // the paper sweeps 1e-8/1e-4/1e-2
};

class NaiveInterpreter : public BlackBoxInterpreter {
 public:
  explicit NaiveInterpreter(NaiveConfig config = {});

  const char* name() const override { return "Naive"; }

  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

  const NaiveConfig& config() const { return config_; }

 private:
  NaiveConfig config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_NAIVE_METHOD_H_
