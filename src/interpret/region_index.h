// RegionIndex: hierarchical point location over cached region bounding
// boxes — the O(log n) replacement for the session cache's linear
// candidate scan.
//
// ## The problem
//
// A production audit of one endpoint accumulates 10^5-10^6 cached
// regions. EndpointSession answers "which cached region explains the API
// output at x0" — and its candidate scan (argmax buckets + linear
// fallback) evaluates every cached model, so lookup cost grows linearly
// with the cache. This index answers the same question by point location:
// each cached region carries an axis-aligned bounding box of the inputs
// it is KNOWN to cover, and a stabbing query over those boxes returns the
// few regions whose box contains x0.
//
// ## Why boxes are learned, not exact
//
// A cached region is a convex polytope of the hidden model, observed only
// through the API: its true extent is unknowable black-box. What IS known
// is every point the engine has validated inside it — the extraction
// anchor with its final consistent hypercube (the solver certified the
// model on probes drawn from it) and every later scan hit. The index
// therefore keeps a LEARNED box per region: seeded with the anchor's
// hypercube, grown (monotonically, under the cache's writer lock) each
// time a point outside it validates against the region. Boxes
// under-cover their polytope until traffic teaches them, and may overlap
// or over-cover after unions — neither affects correctness, because the
// caller validates every candidate with the exact match predicate and
// falls back to the full scan when no candidate survives. The index
// prunes; it never decides. That is what keeps it DECISION-INVISIBLE:
// hit/miss outcomes and consumed query counts are bit-identical to the
// linear reference scan on every request (asserted by the parity fuzz
// tests), while repeat traffic — the reason a cache ever reaches 10^6
// regions — stabs in logarithmic time.
//
// ## Structure
//
// Top level: the session's existing argmax-class partition. Regions are
// filed under the class(es) they predict at their anchor, one FOREST per
// class; a query stabs the forest matching argmax(y0) first — the bucket
// that almost always holds the answer — then the remaining forests (the
// class count is a small constant; a region spanning the decision
// boundary is filed under every class it has served).
//
// Within a forest: Bentley's logarithmic method. Incremental k-d
// insertion degrades to a linear spine under sorted insertion orders —
// exactly what a bulk import or a sweep-shaped audit produces — so each
// forest is a set of PERFECTLY BALANCED static k-d trees with
// power-of-two-ish sizes, merged binary-counter style: an insert appends
// a singleton tree, then merges the trailing trees while the penultimate
// is no larger than the last, rebuilding the union as one median-split
// balanced tree (leaves hold small region batches). Every region takes
// part in O(log n) rebuilds over its lifetime (amortized O(log n) per
// insert, insertion-order-independent), a forest holds O(log n) trees,
// and a stabbing query descends only subtrees whose bound contains the
// query point: O(log^2 n) node visits worst case, a few hundred at
// 10^6 regions where the linear scan evaluates 10^6 models.
//
// Removals (second-chance eviction, ClearCache) erase the slot from its
// leaf immediately; a tree that falls below half its built size is
// rebuilt compactly, so dead space stays bounded. The session CHECKs
// size() == cache size after every mutation (eviction/index coherence is
// an abort, not a drift).
//
// ## Concurrency
//
// The index has no locks of its own: it is owned by EndpointSession and
// shares the session's cache lock — Collect runs under the reader lock
// (no interior mutation, safe concurrent readers), every mutator runs
// under the writer lock the cache mutation already holds. That contract
// is stated where the compiler can check it: the session declares its
// `index_` member PT_GUARDED_BY(cache_mutex_) (util/thread_annotations.h),
// so under Clang -Werror=thread-safety any dereference outside the
// session's lock is a compile error. This class stays annotation-free by
// design — a capability on a lock the class does not own cannot be named
// here, and adding an internal lock would double-lock the hot stab path.

#ifndef OPENAPI_INTERPRET_REGION_INDEX_H_
#define OPENAPI_INTERPRET_REGION_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "linalg/vector_ops.h"

namespace openapi::interpret {

using linalg::Vec;

class RegionIndex {
 public:
  /// `dim` is the input dimensionality of the boxes; `leaf_capacity` the
  /// region batch size held by one k-d leaf.
  explicit RegionIndex(size_t dim, size_t leaf_capacity = 8);

  RegionIndex(const RegionIndex&) = delete;
  RegionIndex& operator=(const RegionIndex&) = delete;

  /// Registers `slot` with learned box [lo, hi] (componentwise). The slot
  /// is not yet filed under any class forest — call File next; Collect
  /// cannot return an unfiled slot. `slot` must not be present.
  void Insert(size_t slot, const Vec& lo, const Vec& hi);

  /// Files a present slot under class forest `bucket` (idempotent).
  void File(size_t slot, size_t bucket);

  /// Removes a present slot from every forest it is filed under.
  void Remove(size_t slot);

  /// Grows slot's box to cover x (monotone; ancestors refit expand-only).
  void Expand(size_t slot, const Vec& x);

  /// Grows slot's box to cover the whole box [lo, hi] — the union applied
  /// when a second extraction of the same region certifies a new
  /// hypercube.
  void Expand(size_t slot, const Vec& lo, const Vec& hi);

  /// Drops every slot and every tree.
  void Clear();

  /// Number of present slots. The session CHECKs this against its region
  /// count after every cache mutation.
  size_t size() const { return live_; }

  bool contains(size_t slot) const {
    return slot < entries_.size() && entries_[slot].present;
  }

  size_t dim() const { return dim_; }

  /// Copies a present slot's learned box into *lo / *hi (false when the
  /// slot is absent). This is how eviction exports everything traffic
  /// taught the region — the tiered store re-persists the grown box so a
  /// post-restart directory stabs as well as the live one did.
  bool ExportBox(size_t slot, Vec* lo, Vec* hi) const {
    if (!contains(slot)) return false;
    const double* l = EntryLo(slot);
    lo->assign(l, l + dim_);
    hi->assign(l + dim_, l + 2 * dim_);
    return true;
  }

  /// Approximate resident bytes: per-slot entries + learned boxes + every
  /// tree's node/bound storage. O(trees) = O(C log n), cheap enough to
  /// refresh after each writer-lock mutation (the session mirrors it into
  /// the EngineStats::index_bytes gauge); per-leaf slot vectors are
  /// estimated from live counts rather than walked.
  size_t memory_bytes() const {
    size_t bytes = entries_.capacity() * sizeof(Entry) +
                   entry_bounds_.capacity() * sizeof(double);
    for (const auto& [bucket, forest] : forests_) {
      for (const auto& tree : forest) {
        bytes += sizeof(Tree) + tree->nodes.capacity() * sizeof(Node) +
                 tree->bounds.capacity() * sizeof(double) +
                 tree->live * (sizeof(uint32_t) + sizeof(Location));
      }
    }
    return bytes;
  }

  /// Appends the slots whose learned box contains x, deduplicated, the
  /// forest filed under `first_bucket` first, then the remaining forests
  /// in ascending bucket order. Read-only (safe under a shared lock).
  /// The result is a conservative candidate set: a slot whose box has not
  /// yet learned to cover x is NOT returned — the caller's exact-scan
  /// fallback covers that case and teaches the box.
  void Collect(const Vec& x, size_t first_bucket,
               std::vector<size_t>* out) const;

  /// The two phases of Collect, split so the caller can validate the
  /// `first_bucket` candidates (the common hit: the query predicts the
  /// region's own argmax) before paying for the other C-1 forests.
  /// CollectRest deduplicates against whatever is already in `out`.
  void CollectBucket(const Vec& x, size_t bucket,
                     std::vector<size_t>* out) const;
  void CollectRest(const Vec& x, size_t exclude_bucket,
                   std::vector<size_t>* out) const;

  /// O(n) structural audit for tests: every present slot reachable from
  /// exactly one leaf per filed bucket, node bounds containing their
  /// subtree, tree live counts exact. Aborts via OPENAPI_CHECK on any
  /// violation.
  void CheckConsistent() const;

  /// Diagnostics: number of balanced trees across all forests, and the
  /// total node count (tests assert the logarithmic-method shape).
  size_t tree_count() const;
  size_t node_count() const;

 private:
  struct Node {
    int32_t parent = -1;
    int32_t left = -1;   // < 0: leaf
    int32_t right = -1;
    std::vector<uint32_t> slots;  // leaf payload
  };

  /// One balanced static k-d tree (a logarithmic-method rank). Node
  /// bounds live in one flat array (`bounds[id * 2 * dim]` = lo then hi,
  /// expand-only between rebuilds): a stab descent reads contiguous
  /// cache lines instead of chasing two heap-allocated vectors per node
  /// — at 10^6 regions the descent runs cold and the pointer chases,
  /// not the comparisons, would dominate the lookup.
  struct Tree {
    std::vector<Node> nodes;     // nodes[0] is the root
    std::vector<double> bounds;  // [id*2*dim, id*2*dim+dim) lo, then hi
    size_t live = 0;             // slots currently stored
    size_t built = 0;            // slots at the last (re)build
  };

  /// Where one slot lives inside one forest.
  struct Location {
    size_t bucket = 0;
    Tree* tree = nullptr;
    int32_t node = -1;
  };

  struct Entry {
    std::vector<Location> locations;  // one per filed bucket
    bool present = false;
  };

  using Forest = std::vector<std::unique_ptr<Tree>>;

  // Flat-bounds accessors (the learned per-slot boxes live in
  // entry_bounds_, same layout as Tree::bounds).
  double* EntryLo(size_t slot) {
    return entry_bounds_.data() + slot * 2 * dim_;
  }
  const double* EntryLo(size_t slot) const {
    return entry_bounds_.data() + slot * 2 * dim_;
  }
  double* EntryHi(size_t slot) { return EntryLo(slot) + dim_; }
  const double* EntryHi(size_t slot) const { return EntryLo(slot) + dim_; }
  static double* NodeLo(Tree* tree, int32_t id, size_t dim) {
    return tree->bounds.data() + static_cast<size_t>(id) * 2 * dim;
  }

  bool BoxContains(const double* lo, const double* hi, const Vec& x) const;
  void ExpandBox(double* lo, double* hi, const double* add_lo,
                 const double* add_hi) const;

  /// Builds a balanced tree over `slots` by recursive median split on the
  /// widest center spread; fills each stored slot's Location for
  /// `bucket`.
  std::unique_ptr<Tree> BuildTree(size_t bucket,
                                  std::vector<uint32_t> slots);
  int32_t BuildNode(Tree* tree, size_t bucket, uint32_t* slots,
                    size_t count, int32_t parent);

  /// Appends a singleton tree for `slot` to `bucket`'s forest, then
  /// restores the binary-counter shape (merge trailing trees while the
  /// penultimate is no larger than the last).
  void InsertIntoForest(size_t bucket, size_t slot);

  /// Collects the live slots of a tree (for merges and rebuilds).
  static void AppendLiveSlots(const Tree& tree, std::vector<uint32_t>* out);

  /// Refits bounds on the path from `node` to the root so they cover
  /// [lo, hi]; stops early once a node already covers it.
  void RefitUp(Tree* tree, int32_t node, const double* lo,
               const double* hi) const;

  void StabTree(const Tree& tree, const Vec& x,
                std::vector<size_t>* out) const;

  const size_t dim_;
  const size_t leaf_capacity_;
  size_t live_ = 0;
  std::vector<Entry> entries_;         // indexed by slot
  std::vector<double> entry_bounds_;   // slot -> flat learned box
  std::map<size_t, Forest> forests_;  // ordered: deterministic scan order
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_REGION_INDEX_H_
