// White-box gradient baselines (Sec. V grants these methods full parameter
// access; they are the "S", "G", "I" curves of Figs. 3-4).
//
//   Saliency Maps        [39]: |d y_c / d x| (unsigned).
//   Gradient * Input     [38]: (d y_c / d x) ⊙ x (signed).
//   Integrated Gradients [43]: (x - baseline) ⊙ mean of gradients along the
//                              straight path baseline -> x (signed; default
//                              baseline is the all-zero image, the standard
//                              choice for [0,1]-normalized pixels).
//
// Gradients are exact: within a locally linear region the softmax
// probability gradient has the closed form in api::ProbabilityGradient.
// Each call touches the PlmOracle (white-box), never the PredictionApi.

#ifndef OPENAPI_INTERPRET_GRADIENT_METHODS_H_
#define OPENAPI_INTERPRET_GRADIENT_METHODS_H_

#include "api/plm.h"
#include "interpret/decision_features.h"

namespace openapi::interpret {

/// Which gradient attribution to compute.
enum class GradientAttribution {
  kSaliencyMap,
  kGradientTimesInput,
  kIntegratedGradients,
  kSmoothGrad,  // Smilkov et al. [41]: gradients averaged over noisy copies
};

const char* GradientAttributionName(GradientAttribution method);

struct IntegratedGradientsConfig {
  size_t num_steps = 50;  // Riemann steps along the path
  Vec baseline;           // empty = all zeros
};

struct SmoothGradConfig {
  size_t num_samples = 25;    // noisy copies averaged
  double noise_stddev = 0.1;  // Gaussian input noise
  uint64_t seed = 1;          // noise stream (kept explicit for tests)
};

/// Attribution vector (length d) for predicting x as class c.
Vec ComputeGradientAttribution(
    const api::PlmOracle& oracle, const Vec& x, size_t c,
    GradientAttribution method,
    const IntegratedGradientsConfig& ig_config = {},
    const SmoothGradConfig& sg_config = {});

/// Adapter giving gradient baselines the same call shape as the black-box
/// interpreters so the evaluation harness can iterate over one list. The
/// PredictionApi argument of Interpret is ignored — gradients come from the
/// oracle, exactly as the paper grants these baselines parameter access.
class GradientInterpreter : public BlackBoxInterpreter {
 public:
  GradientInterpreter(const api::PlmOracle* oracle,
                      GradientAttribution method,
                      IntegratedGradientsConfig ig_config = {},
                      SmoothGradConfig sg_config = {});

  const char* name() const override {
    return GradientAttributionName(method_);
  }

  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

 private:
  const api::PlmOracle* oracle_;
  GradientAttribution method_;
  IntegratedGradientsConfig ig_config_;
  SmoothGradConfig sg_config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_GRADIENT_METHODS_H_
