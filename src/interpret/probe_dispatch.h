// Latency-aware chunked probe dispatch: the tight-deadline story.
//
// RequestOptions deadlines used to be enforced only BETWEEN probe
// batches: the shrink loop gated each d+1-probe batch on
// CheckRequestControls and then handed the whole batch to
// PredictionApi::PredictBatch in one call, so one slow batch against a
// high-latency endpoint overshot the deadline by up to the batch's full
// latency — unboundedly, since the endpoint's speed is not ours to pick.
// That is exactly the per-request cost unpredictability the closed-form
// method's fixed query budget is supposed to eliminate (Cong et al.,
// ICDE 2020), and the failure mode local-approximation baselines pay on
// every instance.
//
// DispatchProbes makes the guarantee tight. A probe batch is split into
// CHUNKS sized from a per-endpoint EWMA of observed per-row latency
// (api::PredictionApi::row_latency(); seeded with a deliberately
// pessimistic prior while the endpoint is cold) and the request's
// controls are re-checked between chunks with a PREDICTIVE gate: a chunk
// is only dispatched when its estimated duration still fits before the
// deadline (EnforceRequestOptions). Consequences:
//
//   * a request now stops within one CHUNK, not one batch, of its
//     deadline — and the chunk was sized at a fraction of the remaining
//     time, so the overshoot is bounded by one (mis)estimated chunk;
//   * a request whose FIRST chunk is already predicted past the deadline
//     is rejected before any endpoint traffic (DeadlineExceeded with
//     queries == 0), closing the old disagreement between the pre-flight
//     and the per-batch check on that boundary case;
//   * cancellation reaction time is bounded by cancel_chunk_seconds for
//     cancellable requests without a deadline;
//   * partial consumption stays exact: every chunk is a real
//     PredictBatch of exactly that many rows, counted into *consumed as
//     it lands, so a mid-batch rejection reports precisely what
//     api.query_count() saw.
//
// Chunking is semantically invisible: chunks run sequentially in row
// order, so query counts and noise tickets are consumed in exactly the
// batch order and results stay bit-identical to the unchunked dispatch.
// Requests with no deadline and no cancel token are dispatched as a
// single chunk (one PredictBatch, one timer read pair to keep the
// endpoint's estimate warm), so the fast path pays ~nothing.

#ifndef OPENAPI_INTERPRET_PROBE_DISPATCH_H_
#define OPENAPI_INTERPRET_PROBE_DISPATCH_H_

#include <vector>

#include "api/prediction_api.h"
#include "interpret/request_options.h"

namespace openapi::interpret {

using linalg::Vec;

/// Retry policy for refused probe chunks (TryPredictBatch returning a
/// retryable failure class — kTransient/kThrottled/kTimeout). Backoff is
/// capped exponential with DECORRELATED JITTER: each sleep is drawn
/// uniformly from [initial, 3 x previous sleep], clamped to the cap, so
/// synchronized failures de-synchronize instead of thundering back in
/// lockstep. Every sleep is re-gated against the request's
/// deadline/budget/cancel first, so backing off can never blow a control
/// a fresh chunk would have respected.
struct RetryConfig {
  /// Attempts per chunk, including the first. 1 = no retries.
  size_t max_attempts = 4;

  /// First backoff sleep, and the lower bound of every jittered draw.
  double initial_backoff_seconds = 0.001;

  /// Hard cap on any single backoff sleep.
  double max_backoff_seconds = 0.100;

  /// Failed attempts allowed per REQUEST (across all its chunks), the
  /// bound on retry amplification: once a request has burned this many
  /// failed attempts, the next failure degrades to kUnavailable instead
  /// of retrying. 0 = no request-level bound (per-chunk max_attempts
  /// still applies).
  uint64_t retry_budget = 16;

  /// Jitter stream seed: backoff sleeps are a pure function of (seed,
  /// consumed-so-far, chunk size), so a single-threaded run replays its
  /// retry schedule bit-identically.
  uint64_t seed = 0xb0ff;
};

/// Per-request retry accounting, surfaced as EngineStats::wasted_queries
/// / retries. `wasted_queries` counts queries charged by attempts that
/// produced no answer (a simple endpoint refuses before consuming — 0;
/// a replica set may have reserved rows before a shard was refused) plus
/// a composite endpoint's internal re-dispatch overhead on success;
/// `retries` counts failed attempts.
struct ProbeRetryStats {
  uint64_t wasted_queries = 0;
  uint64_t retries = 0;
};

/// Knobs of the latency-aware chunk splitter. Lives in
/// OpenApiConfig::dispatch, so the engine exposes it as
/// EngineConfig::openapi.dispatch.
struct ChunkedDispatchConfig {
  /// Master switch. Off = one PredictBatch per probe batch, no latency
  /// recording, no per-chunk gates — bit-for-bit the pre-chunking
  /// dispatch, kept as the bench baseline (bench_kernels quantifies the
  /// overhead as within noise on fast endpoints).
  bool enabled = true;

  /// Weight of the newest chunk observation in the per-endpoint EWMA.
  double ewma_alpha = 0.25;

  /// Assumed per-row latency while the endpoint has no recorded chunks.
  /// Deliberately pessimistic (10 ms/row): a cold endpoint gets a tiny
  /// first chunk whose observation immediately corrects the estimate, so
  /// a fast endpoint pays one extra round-trip instead of a slow one
  /// blowing a deadline by a whole batch. Corollary: a COLD endpoint
  /// with a deadline tighter than this prior's first chunk is rejected
  /// up front with zero queries — conservative by design.
  double seed_seconds_per_row = 0.010;

  /// A chunk targets at most this fraction of the time remaining to the
  /// deadline, so chunks shrink geometrically as the deadline nears and
  /// the final overshoot is a fraction of the remaining window.
  double deadline_chunk_fraction = 0.25;

  /// Chunk duration cap for any CANCELLABLE request: bounds how long a
  /// cancellation can go unnoticed mid-batch. With no deadline it is the
  /// chunk target outright; with one, the tighter of this and the
  /// deadline-fraction target wins (a roomy deadline must not slow the
  /// cancel reaction down).
  double cancel_chunk_seconds = 0.010;

  /// Never plan fewer rows than this per chunk (>= 1 enforced). Raising
  /// it trades deadline tightness for fewer round-trips.
  size_t min_chunk_rows = 1;

  /// Retry/backoff policy applied to every chunk (including the
  /// single-chunk fast paths), so transient endpoint failures are
  /// absorbed here instead of surfacing to the solver.
  RetryConfig retry;
};

/// The per-row latency estimate a dispatcher should plan with: the
/// endpoint's recorded EWMA, or the conservative seed while cold.
///
/// Concurrency: api::LatencyEstimate is LOCK-FREE (a CAS-looped atomic
/// double; protocol documented on the class), so this read — and the
/// Record calls DispatchProbes makes after timing each chunk — take no
/// lock and carry no capability annotation. Concurrent requests chunking
/// against one endpoint fold their observations in some serialization
/// order; a racing read sees either side of a fold, both of which are
/// valid plans (the deadline gate re-checks real clocks before every
/// chunk).
double EffectiveRowLatency(const api::PredictionApi& api,
                           const ChunkedDispatchConfig& config);

/// Rows the next chunk should carry, given the request's controls and
/// the current per-row estimate. `rows_left` > 0; the result is in
/// [1, rows_left].
size_t PlanChunkRows(const ChunkedDispatchConfig& config,
                     const RequestOptions& options, double seconds_per_row,
                     size_t rows_left);

/// Sends `points` to `api` in latency-aware chunks, writing prediction i
/// into (*predictions)[out_offset + i] (rows are assign()ed, so a
/// workspace's prediction buffers are reused, not reallocated).
/// `predictions` must already be sized to at least out_offset +
/// points.size(). *consumed is advanced by exactly the queries charged,
/// chunk by chunk — including queries a composite endpoint consumed on a
/// REFUSED attempt — so it always matches api.query_count(); on a
/// mid-batch rejection (Cancelled / DeadlineExceeded / BudgetExhausted /
/// Unavailable) the queries already charged stay counted and the
/// remainder of `points` is never sent.
///
/// Failure handling: a chunk refused with a retryable class is retried
/// under config.retry (capped backoff with decorrelated jitter, each
/// sleep re-gated against the request's controls). A non-retryable
/// refusal propagates as-is; exhausting per-chunk attempts or the
/// request's retry budget degrades to kUnavailable with exact counts in
/// the message. `retry_stats` (nullable) accumulates the request's
/// failed attempts and wasted queries across calls.
Status DispatchProbes(const api::PredictionApi& api,
                      const std::vector<Vec>& points,
                      const RequestOptions& options,
                      const ChunkedDispatchConfig& config,
                      uint64_t* consumed, std::vector<Vec>* predictions,
                      size_t out_offset,
                      ProbeRetryStats* retry_stats = nullptr);

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_PROBE_DISPATCH_H_
