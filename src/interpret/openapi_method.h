// OpenAPI (Sec. IV-C, Algorithm 1): the paper's contribution.
//
// For each opposing class c', the method builds the overdetermined system
// Ω_{d+2} from x0 plus d+1 probes drawn uniformly from the hypercube of
// edge length r around x0, and solves it in closed form. Theorem 2: if
// Ω_{d+2} is consistent, its unique solution equals the true core
// parameters (D_{c,c'}, B_{c,c'}) with probability 1. If any pair's system
// is inconsistent — the numerical signal that a probe crossed a region
// boundary — the hypercube is halved and all probes are re-drawn, up to
// `max_iterations` times.
//
// Implementation notes beyond the paper's pseudocode:
//  * All C-1 systems share the coefficient matrix A (rows [1, p^T]); we
//    factor A once by Householder QR and reuse it for every right-hand
//    side, turning O(C (d+2)^3) per iteration into O((d+2)^3 + C (d+2)^2).
//    bench_ablation quantifies the win; correctness is unchanged.
//  * "Ω_{d+2} has a solution" becomes a residual test: the least-squares
//    residual must satisfy ||A beta - rhs||_inf <= tol * (1 + ||rhs||_inf).
//  * Softmax saturation (some API probability underflowing to 0) is
//    reported as an inconsistent attempt, triggering the same shrink.

#ifndef OPENAPI_INTERPRET_OPENAPI_METHOD_H_
#define OPENAPI_INTERPRET_OPENAPI_METHOD_H_

#include "interpret/decision_features.h"

namespace openapi::interpret {

struct OpenApiConfig {
  size_t max_iterations = 100;   // paper's system parameter m
  double initial_edge = 1.0;     // paper initializes r = 1.0
  double shrink_factor = 0.5;    // paper halves r each failed iteration
  // Residual tolerance for the consistency test. Genuinely consistent
  // systems solve to residuals near machine precision (backward-stable QR
  // on O(1)-scaled rows), while a probe crossing a region boundary leaves
  // a kink-sized residual; 1e-9 cleanly separates the two. bench_ablation
  // sweeps this knob.
  double consistency_tol = 1e-9;
};

class OpenApiInterpreter : public BlackBoxInterpreter {
 public:
  explicit OpenApiInterpreter(OpenApiConfig config = {});

  const char* name() const override { return "OpenAPI"; }

  /// Runs Algorithm 1. On success the returned Interpretation carries the
  /// exact D_c, the final probe set, per-pair core parameters, and the
  /// number of shrink iterations. Fails with DidNotConverge only if no
  /// consistent probe set was found within max_iterations (probability-0
  /// boundary case, or an API that rounds its probabilities).
  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

  const OpenApiConfig& config() const { return config_; }

 private:
  OpenApiConfig config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_OPENAPI_METHOD_H_
