// OpenAPI (Sec. IV-C, Algorithm 1): the paper's contribution.
//
// For each opposing class c', the method builds the overdetermined system
// Ω_{d+2} from x0 plus d+1 probes drawn uniformly from the hypercube of
// edge length r around x0, and solves it in closed form. Theorem 2: if
// Ω_{d+2} is consistent, its unique solution equals the true core
// parameters (D_{c,c'}, B_{c,c'}) with probability 1. If any pair's system
// is inconsistent — the numerical signal that a probe crossed a region
// boundary — the hypercube is halved and all probes are re-drawn, up to
// `max_iterations` times.
//
// Implementation notes beyond the paper's pseudocode:
//  * All C-1 systems share the coefficient matrix A (rows [1, p^T]); we
//    factor A once by Householder QR and reuse it for every right-hand
//    side, turning O(C (d+2)^3) per iteration into O((d+2)^3 + C (d+2)^2).
//    bench_ablation quantifies the win; correctness is unchanged.
//  * "Ω_{d+2} has a solution" becomes a residual test: the least-squares
//    residual must satisfy ||A beta - rhs||_inf <= tol * (1 + ||rhs||_inf).
//  * Softmax saturation at a probe (some probability underflowing to 0 away
//    from x0) is reported as an inconsistent attempt, triggering the same
//    shrink.
//  * Softmax saturation at x0 itself — y0[k] == 0 for some class k — can
//    never be shrunk away, so it gets a dedicated recovery path instead of
//    burning the full iteration budget: the solve switches its reference
//    class to argmax(y0) (whose probability is >= 1/C, never saturated),
//    drops each pair's unusable rows — zero or subnormal probabilities,
//    whose logs would poison the residual test — while topping up the
//    probe set so every masked system stays overdetermined and the
//    consistency certificate survives, and converts the recovered pairs
//    back to the requested class algebraically (ConvertReferencePairs). A draw that
//    leaves too few usable rows is retried at the same edge (the
//    saturated halfspace through x0 does not shrink away); only a genuine
//    inconsistency still halves the hypercube. Extraction callers that
//    pin the reference to class 0 inherit the fix: the converted pairs are
//    reference-0 pairs, re-canonicalized to the column-0-pinned gauge by
//    CanonicalModelFromPairs as usual.
//  * The saturated path's probe budget is ADAPTIVE: each iteration draws
//    the usual d+1 probes, then tops up with exactly the worst pair's
//    usable-row deficit (re-checked after each top-up batch, capped at
//    d+1 extra so an iteration never exceeds the old uniform 2(d+1)
//    doubling). When saturation is confined to the x0 row this costs
//    d+2 probes instead of 2(d+1) — roughly half.
//  * Per-request controls (RequestOptions: query budget, deadline,
//    cancellation) are checked before the anchor query and before every
//    probe batch, so a request with max_queries = Q never issues more
//    than Q queries; on rejection the consumed count reported through
//    InterpretCounted is exact. Probe batches are additionally routed
//    through the latency-aware chunked dispatch (probe_dispatch.h): when
//    a deadline or cancel token is set, each batch is split into chunks
//    sized from the endpoint's per-row latency EWMA and the controls are
//    re-checked (predictively, for the deadline) between chunks — a slow
//    endpoint overshoots its deadline by at most one chunk, not one
//    batch, and partial-chunk consumption stays exact against
//    api.query_count().
//  * The shrink loop runs out of a per-request SolverWorkspace (probe
//    set, prediction buffer, coefficient matrix, QR storage + scratch,
//    masked-row scratch) reused across iterations and across the
//    saturated top-up path: after the first iteration the solver itself
//    allocates nothing — redraws, refactorizations, and solves all
//    overwrite the same buffers. OpenApiConfig::reuse_workspace turns the
//    reuse off for benchmarking the win.

#ifndef OPENAPI_INTERPRET_OPENAPI_METHOD_H_
#define OPENAPI_INTERPRET_OPENAPI_METHOD_H_

#include "interpret/decision_features.h"
#include "interpret/probe_dispatch.h"
#include "interpret/request_options.h"
#include "linalg/qr.h"

namespace openapi::interpret {

struct OpenApiConfig {
  size_t max_iterations = 100;   // paper's system parameter m
  double initial_edge = 1.0;     // paper initializes r = 1.0
  double shrink_factor = 0.5;    // paper halves r each failed iteration
  // Residual tolerance for the consistency test. Genuinely consistent
  // systems solve to residuals near machine precision (backward-stable QR
  // on O(1)-scaled rows), while a probe crossing a region boundary leaves
  // a kink-sized residual; 1e-9 cleanly separates the two. bench_ablation
  // sweeps this knob.
  double consistency_tol = 1e-9;
  // Reuse the per-request SolverWorkspace across shrink iterations (the
  // allocation-free steady state). Off Clear()s the workspace before
  // every iteration: logical contents are rebuilt from scratch but the
  // heap blocks are KEPT — a caller-supplied (pooled) workspace never
  // loses its grown buffers to one request's config. (An earlier
  // revision assigned a fresh SolverWorkspace here, silently destroying
  // the caller's amortized buffers.) Results are identical either way.
  bool reuse_workspace = true;
  // Latency-aware chunk splitting of probe batches (deadline tightness,
  // cancellation reaction time, per-endpoint latency EWMA). See
  // probe_dispatch.h; dispatch.enabled = false restores the one-call-
  // per-batch dispatch for benching.
  ChunkedDispatchConfig dispatch;
};

/// Scratch buffers of one interpretation request, reused across the
/// shrink loop's iterations and the saturated path's top-up draws. Every
/// buffer grows to the request's largest shape on the first iteration and
/// is only overwritten afterwards, so steady-state shrink iterations
/// perform ZERO heap allocations inside the solver — the remaining
/// per-iteration allocations are the endpoint's own response vectors in
/// PredictionApi::PredictBatch. Callers normally pass nullptr and let
/// InterpretCounted keep a request-local workspace; a caller serving many
/// requests may hold one and amortize the first-iteration growth across
/// requests too — the interpretation engine does exactly that with a
/// pool of per-worker workspaces checked out per request, and a
/// caller-supplied workspace KEEPS its probe buffers on success (the
/// response gets a copy), so the second request onward performs zero
/// solver allocations. Not thread-safe; one workspace per concurrent
/// request.
struct SolverWorkspace {
  std::vector<Vec> probes;       // iteration's probe points
  std::vector<Vec> predictions;  // {y0, probe predictions...}
  Matrix coefficients;           // shared coefficient matrix A
  Vec rhs;                       // per-pair log-odds right-hand side
  linalg::QrDecomposition qr;    // factorization storage
  linalg::QrDecomposition::Scratch qr_scratch;
  linalg::LeastSquaresSolution solution;
  std::vector<CoreParameters> ref_pairs;  // pairs vs the reference class
  // Saturated path: per-pair row masking.
  std::vector<size_t> masked_rows;  // usable-row index scratch
  Matrix masked_coefficients;
  Vec masked_rhs;

  /// Resets logical sizes while keeping every heap block — including each
  /// probe/prediction ROW's buffer, which clearing the outer vectors
  /// would free. A Cleared workspace behaves like a fresh one but regrows
  /// nothing at its old shapes; the engine's workspace pool Clears
  /// between requests, and reuse_workspace = false Clears between
  /// iterations.
  void Clear();
};

class OpenApiInterpreter : public BlackBoxInterpreter {
 public:
  explicit OpenApiInterpreter(OpenApiConfig config = {});

  const char* name() const override { return "OpenAPI"; }

  /// Runs Algorithm 1. On success the returned Interpretation carries the
  /// exact D_c, the final probe set, per-pair core parameters, and the
  /// number of shrink iterations. Fails with DidNotConverge only if no
  /// consistent probe set was found within max_iterations (probability-0
  /// boundary case, an API that rounds its probabilities, or a class that
  /// saturates throughout the probed neighborhood).
  Result<Interpretation> Interpret(const api::PredictionApi& api,
                                   const Vec& x0, size_t c,
                                   util::Rng* rng) const override;

  /// Interpret with exact cost reporting on every path. *queries_consumed
  /// (if non-null) is IN/OUT: on entry, the queries the caller already
  /// spent on this request (counted against `options` and included in the
  /// totals, so budget rejections report the request's true consumption);
  /// on return, the request's total, success or failure. The
  /// interpretation engine uses this so its aggregate accounting matches
  /// the api's atomic query_count in every error path — a failed solve
  /// still consumed its probes. `options` carries the per-request
  /// budget/deadline/cancel controls, enforced before every probe batch
  /// (default: unlimited); *iterations (if non-null) reports the shrink
  /// iterations attempted, success or failure. `y0_hint` (if non-null) is
  /// the endpoint's prediction at x0, already paid for by the caller —
  /// the solver then skips its own anchor query, so a cache miss in the
  /// engine does not bill x0 twice against the request's budget.
  /// Interpret() above is InterpretCounted with the count dropped and
  /// default controls. `workspace` (if non-null) supplies the request's
  /// solver scratch, letting a per-thread caller amortize buffer growth
  /// across requests; nullptr uses a request-local workspace.
  /// `retry_stats` (if non-null) accumulates the request's failed
  /// endpoint attempts and wasted queries (see ProbeRetryStats) — every
  /// endpoint touch, the anchor included, goes through the retry-aware
  /// dispatch, so a transiently failing endpoint costs retries, not the
  /// request.
  Result<Interpretation> InterpretCounted(
      const api::PredictionApi& api, const Vec& x0, size_t c, util::Rng* rng,
      uint64_t* queries_consumed, const RequestOptions& options = {},
      size_t* iterations = nullptr, const Vec* y0_hint = nullptr,
      SolverWorkspace* workspace = nullptr,
      ProbeRetryStats* retry_stats = nullptr) const;

  const OpenApiConfig& config() const { return config_; }

 private:
  /// `caller_owned_workspace` distinguishes a caller-supplied (pooled)
  /// workspace from the request-local one: the former keeps its probe
  /// buffers on success (the result gets a copy), the latter donates
  /// them (a move; the buffers would die with the request anyway).
  Result<Interpretation> InterpretImpl(
      const api::PredictionApi& api, const Vec& x0, size_t c, util::Rng* rng,
      uint64_t* consumed, const RequestOptions& options, size_t* iterations,
      const Vec* y0_hint, SolverWorkspace* workspace,
      bool caller_owned_workspace, ProbeRetryStats* retry_stats) const;

  OpenApiConfig config_;
};

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_OPENAPI_METHOD_H_
