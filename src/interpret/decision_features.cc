#include "interpret/decision_features.h"

#include <cmath>

#include "util/string_util.h"

namespace openapi::interpret {

Vec CombinePairEstimates(const std::vector<CoreParameters>& pairs) {
  OPENAPI_CHECK(!pairs.empty());
  const size_t d = pairs[0].d.size();
  Vec dc(d, 0.0);
  for (const CoreParameters& pair : pairs) {
    OPENAPI_CHECK_EQ(pair.d.size(), d);
    linalg::Axpy(1.0, pair.d, &dc);
  }
  const double scale = 1.0 / static_cast<double>(pairs.size());
  for (double& v : dc) v *= scale;
  return dc;
}

std::vector<Vec> SampleHypercube(const Vec& x0, double r, size_t count,
                                 util::Rng* rng) {
  std::vector<Vec> probes;
  SampleHypercube(x0, r, count, rng, &probes);
  return probes;
}

void SampleHypercube(const Vec& x0, double r, size_t count, util::Rng* rng,
                     std::vector<Vec>* out) {
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    Vec& p = (*out)[i];
    p.resize(x0.size());
    for (size_t j = 0; j < x0.size(); ++j) {
      p[j] = x0[j] + rng->Uniform(-r, r);
    }
  }
}

Matrix BuildCoefficientMatrix(const Vec& x0,
                              const std::vector<Vec>& probes) {
  Matrix a;
  BuildCoefficientMatrix(x0, probes, &a);
  return a;
}

void BuildCoefficientMatrix(const Vec& x0, const std::vector<Vec>& probes,
                            Matrix* a) {
  const size_t d = x0.size();
  a->Resize(probes.size() + 1, d + 1);
  (*a)(0, 0) = 1.0;
  for (size_t j = 0; j < d; ++j) (*a)(0, j + 1) = x0[j];
  for (size_t i = 0; i < probes.size(); ++i) {
    OPENAPI_CHECK_EQ(probes[i].size(), d);
    (*a)(i + 1, 0) = 1.0;
    for (size_t j = 0; j < d; ++j) (*a)(i + 1, j + 1) = probes[i][j];
  }
}

Result<double> LogOdds(const Vec& y, size_t c, size_t c_prime) {
  OPENAPI_CHECK_LT(c, y.size());
  OPENAPI_CHECK_LT(c_prime, y.size());
  if (y[c] <= 0.0 || y[c_prime] <= 0.0) {
    return Status::NumericalError(util::StrFormat(
        "softmax saturation: y[%zu]=%g y[%zu]=%g", c, y[c], c_prime,
        y[c_prime]));
  }
  return std::log(y[c]) - std::log(y[c_prime]);
}

Result<Vec> BuildLogOddsRhs(const std::vector<Vec>& predictions, size_t c,
                            size_t c_prime) {
  Vec rhs;
  OPENAPI_RETURN_NOT_OK(BuildLogOddsRhs(predictions, c, c_prime, &rhs));
  return rhs;
}

Status BuildLogOddsRhs(const std::vector<Vec>& predictions, size_t c,
                       size_t c_prime, Vec* rhs) {
  rhs->resize(predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    OPENAPI_ASSIGN_OR_RETURN((*rhs)[i], LogOdds(predictions[i], c, c_prime));
  }
  return Status::OK();
}

std::vector<CoreParameters> ConvertReferencePairs(
    const std::vector<CoreParameters>& ref_pairs, size_t ref, size_t c) {
  const size_t num_classes = ref_pairs.size() + 1;
  OPENAPI_CHECK_LT(ref, num_classes);
  OPENAPI_CHECK_LT(c, num_classes);
  if (ref == c) return ref_pairs;
  // Pair (ref, k) sits at index k (k < ref) or k-1 (k > ref).
  auto pair_of = [&](size_t k) -> const CoreParameters& {
    return ref_pairs[k < ref ? k : k - 1];
  };
  const CoreParameters& ref_c = pair_of(c);  // (D_{ref,c}, B_{ref,c})
  const size_t d = ref_c.d.size();
  std::vector<CoreParameters> out;
  out.reserve(num_classes - 1);
  for (size_t k = 0; k < num_classes; ++k) {
    if (k == c) continue;
    CoreParameters pair;
    pair.d.resize(d);
    if (k == ref) {
      for (size_t j = 0; j < d; ++j) pair.d[j] = -ref_c.d[j];
      pair.b = -ref_c.b;
    } else {
      const CoreParameters& ref_k = pair_of(k);
      OPENAPI_CHECK_EQ(ref_k.d.size(), d);
      for (size_t j = 0; j < d; ++j) pair.d[j] = ref_k.d[j] - ref_c.d[j];
      pair.b = ref_k.b - ref_c.b;
    }
    out.push_back(std::move(pair));
  }
  return out;
}

api::LocalLinearModel CanonicalModelFromPairs(
    const std::vector<CoreParameters>& pairs, size_t d) {
  const size_t num_classes = pairs.size() + 1;
  api::LocalLinearModel model;
  model.weights = Matrix(d, num_classes);
  model.bias.assign(num_classes, 0.0);
  for (size_t c = 1; c < num_classes; ++c) {
    const CoreParameters& pair = pairs[c - 1];
    OPENAPI_CHECK_EQ(pair.d.size(), d);
    for (size_t j = 0; j < d; ++j) {
      model.weights(j, c) = -pair.d[j];
    }
    model.bias[c] = -pair.b;
  }
  return model;
}

uint64_t LocalModelFingerprint(const api::LocalLinearModel& model,
                               double resolution) {
  OPENAPI_CHECK_GT(resolution, 0.0);
  double scale =
      std::max(model.weights.MaxAbs(), linalg::NormInf(model.bias));
  if (scale == 0.0) scale = 1.0;
  const double quantum = scale * resolution;
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](int64_t v) {
    h ^= static_cast<uint64_t>(v);
    h *= 1099511628211ULL;
  };
  for (double w : model.weights.data()) {
    mix(static_cast<int64_t>(std::llround(w / quantum)));
  }
  for (double b : model.bias) {
    mix(static_cast<int64_t>(std::llround(b / quantum)));
  }
  mix(static_cast<int64_t>(model.weights.rows()));
  mix(static_cast<int64_t>(model.weights.cols()));
  return h;
}

}  // namespace openapi::interpret
