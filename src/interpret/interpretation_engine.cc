#include "interpret/interpretation_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "api/ground_truth.h"
#include "store/region_store.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace openapi::interpret {
namespace {

constexpr size_t kNoSlot = static_cast<size_t>(-1);

/// Bound on the point-memo keys filed under ONE region (FIFO within the
/// region): together with the region capacity this bounds the whole memo,
/// closing the "point memo grows without bound" hole.
constexpr size_t kMaxMemoPointsPerRegion = 256;

/// Estimated resident bytes of one point-memo hash-map entry: the
/// 128-bit PointKey, the slot value, and the node/bucket overhead of the
/// unordered_map. Feeds the memo_bytes gauge the byte budget bounds.
constexpr size_t kMemoMapEntryBytes =
    2 * sizeof(uint64_t) + sizeof(size_t) + 2 * sizeof(void*);

/// Resident bytes of one entry in a region's bounded per-slot key list.
constexpr size_t kMemoListEntryBytes = 2 * sizeof(uint64_t);

/// Core parameters of `model` for class c against every c' != c, in the
/// order Interpretation::pairs documents.
std::vector<CoreParameters> PairsFromModel(const api::LocalLinearModel& model,
                                           size_t c) {
  const size_t num_classes = model.bias.size();
  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == c) continue;
    pairs.push_back(api::GroundTruthCoreParameters(model, c, c_prime));
  }
  return pairs;
}

}  // namespace

// GCC 12 reports spurious -Wmaybe-uninitialized when a variant-backed
// Result moves out of the deque into the returned optional (the
// PR105562 family of false positives); every Item is fully constructed
// by a worker before it is queued.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
std::optional<SessionStream::Item> SessionStream::Next() {
  if (shared_ == nullptr || delivered_ == total_) return std::nullopt;
  util::MutexLock lock(shared_->mutex);
  // delivered_ < total_, so an undelivered item is either queued already
  // or still running on the pool and will be queued when it finishes.
  while (shared_->completed.empty()) shared_->ready.Wait(shared_->mutex);
  std::optional<Item> item;
  item.emplace(std::move(shared_->completed.front()));
  shared_->completed.pop_front();
  ++delivered_;
  return item;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---------------------------------------------------------------------------
// EndpointSession
// ---------------------------------------------------------------------------

EndpointSession::EndpointSession(const InterpretationEngine* engine,
                                 const api::PredictionApi* api,
                                 size_t capacity, size_t byte_budget,
                                 store::RegionStore* store)
    : engine_(engine),
      engine_stats_(engine->stats_),
      api_(api),
      capacity_(capacity),
      byte_budget_(byte_budget),
      store_(store) {
  if (store_ != nullptr) {
    // A shape-mismatched store would deserialize garbage models that
    // then fail validation on every reload — catch it at open time.
    OPENAPI_CHECK_EQ(store_->dim(), api_->dim());
    OPENAPI_CHECK_EQ(store_->num_classes(), api_->num_classes());
    // Resume drift tracking where the log left off: regions persisted at
    // older epochs stay invalidated across a restart.
    epoch_.store(store_->current_epoch(), std::memory_order_relaxed);
  }
  if (engine_->config().use_region_cache &&
      engine_->config().use_region_index) {
    index_ = std::make_unique<RegionIndex>(api_->dim());
  }
}

EndpointSession::~EndpointSession() {
  // The session's RESIDENCY leaves the engine aggregate with it; its
  // historical activity counters stay. Direct engine-side subtraction
  // (not BumpGauge): the session side is being destroyed anyway. Goes
  // through the co-owned engine_stats_, never engine_ — the session may
  // be the last thing standing after the engine's own destruction.
  engine_stats_->region_bytes.fetch_sub(
      stats_.region_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  engine_stats_->memo_bytes.fetch_sub(
      stats_.memo_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  engine_stats_->index_bytes.fetch_sub(
      stats_.index_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

EngineStats EndpointSession::Snapshot(const StatCounters& counters) {
  EngineStats s;
  s.requests = counters.requests.load(std::memory_order_relaxed);
  s.point_memo_hits =
      counters.point_memo_hits.load(std::memory_order_relaxed);
  s.cache_hits = counters.cache_hits.load(std::memory_order_relaxed);
  s.disk_hits = counters.disk_hits.load(std::memory_order_relaxed);
  s.cache_misses = counters.cache_misses.load(std::memory_order_relaxed);
  s.evictions = counters.evictions.load(std::memory_order_relaxed);
  s.failures = counters.failures.load(std::memory_order_relaxed);
  s.queries = counters.queries.load(std::memory_order_relaxed);
  s.store_appends = counters.store_appends.load(std::memory_order_relaxed);
  s.drift_events = counters.drift_events.load(std::memory_order_relaxed);
  s.stale_invalidations =
      counters.stale_invalidations.load(std::memory_order_relaxed);
  s.wasted_queries = counters.wasted_queries.load(std::memory_order_relaxed);
  s.retries = counters.retries.load(std::memory_order_relaxed);
  s.region_bytes = counters.region_bytes.load(std::memory_order_relaxed);
  s.memo_bytes = counters.memo_bytes.load(std::memory_order_relaxed);
  s.index_bytes = counters.index_bytes.load(std::memory_order_relaxed);
  s.cache_bytes = s.region_bytes + s.memo_bytes + s.index_bytes;
  return s;
}

void EndpointSession::Reset(StatCounters& counters) {
  // Activity counters only: the byte gauges track LIVE residency and
  // must stay in sync with the cache contents across a stats reset.
  counters.requests.store(0, std::memory_order_relaxed);
  counters.point_memo_hits.store(0, std::memory_order_relaxed);
  counters.cache_hits.store(0, std::memory_order_relaxed);
  counters.disk_hits.store(0, std::memory_order_relaxed);
  counters.cache_misses.store(0, std::memory_order_relaxed);
  counters.evictions.store(0, std::memory_order_relaxed);
  counters.failures.store(0, std::memory_order_relaxed);
  counters.queries.store(0, std::memory_order_relaxed);
  counters.store_appends.store(0, std::memory_order_relaxed);
  counters.drift_events.store(0, std::memory_order_relaxed);
  counters.stale_invalidations.store(0, std::memory_order_relaxed);
  counters.wasted_queries.store(0, std::memory_order_relaxed);
  counters.retries.store(0, std::memory_order_relaxed);
}

void EndpointSession::Bump(std::atomic<uint64_t> StatCounters::* counter,
                           uint64_t n) const {
  (stats_.*counter).fetch_add(n, std::memory_order_relaxed);
  ((*engine_stats_).*counter).fetch_add(n, std::memory_order_relaxed);
}

void EndpointSession::BumpGauge(std::atomic<uint64_t> StatCounters::* gauge,
                                int64_t delta) const {
  // Negative deltas wrap through unsigned arithmetic and cancel exactly
  // against the positive ones, so the gauge reads correct at any point
  // where its mutations are ordered (they all run under the writer lock).
  const uint64_t d = static_cast<uint64_t>(delta);
  (stats_.*gauge).fetch_add(d, std::memory_order_relaxed);
  ((*engine_stats_).*gauge).fetch_add(d, std::memory_order_relaxed);
}

size_t EndpointSession::SlotBytes(const CachedRegion& region) {
  return sizeof(CachedRegion) +
         sizeof(double) *
             (region.model.weights.rows() * region.model.weights.cols() +
              region.model.bias.size() + region.anchor.size());
}

size_t EndpointSession::CacheBytesLocked() const {
  return stats_.region_bytes.load(std::memory_order_relaxed) +
         stats_.memo_bytes.load(std::memory_order_relaxed) +
         stats_.index_bytes.load(std::memory_order_relaxed);
}

size_t EndpointSession::OccupiedLocked() const {
  return regions_.size() - free_slots_.size();
}

void EndpointSession::RefreshIndexBytesLocked() const {
  const uint64_t now = index_ != nullptr ? index_->memory_bytes() : 0;
  const uint64_t before = stats_.index_bytes.load(std::memory_order_relaxed);
  if (now != before) {
    BumpGauge(&StatCounters::index_bytes,
              static_cast<int64_t>(now - before));
  }
}

void EndpointSession::EnforceByteBudgetLocked(
    size_t protect_slot, std::vector<store::RegionRecord>* spills) const {
  if (byte_budget_ == 0) return;
  while (CacheBytesLocked() > byte_budget_) {
    const size_t occupied = OccupiedLocked();
    if (occupied == 0) break;
    size_t guard = protect_slot;
    if (occupied == 1 && protect_slot != kNoSlot &&
        protect_slot < regions_.size() && regions_[protect_slot].occupied) {
      // Everything else is gone and the cache still exceeds the budget:
      // the protected region cannot be cached within the ceiling. Evict
      // it too (the request it served already holds its own copy).
      guard = kNoSlot;
    }
    free_slots_.push_back(EvictOneLocked(guard, spills));
  }
}

EndpointSession::PointKey EndpointSession::PointKeyOf(const Vec& x0) {
  // Two FNV-1a streams with different offsets over the raw double bits.
  uint64_t h1 = 1469598103934665603ULL;
  uint64_t h2 = 0xcbf29ce484222325ULL ^ 0x9e3779b97f4a7c15ULL;
  for (double v : x0) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h1 = (h1 ^ bits) * 1099511628211ULL;
    h2 = (h2 ^ (bits + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
  }
  h1 = (h1 ^ x0.size()) * 1099511628211ULL;
  return {h1, h2};
}

bool EndpointSession::RegionMatches(const api::LocalLinearModel& model,
                                    const Vec& x, const Vec& y) const {
  Vec predicted = api::EvaluateLocalModel(model, x);
  double worst = 0.0;
  for (size_t k = 0; k < y.size(); ++k) {
    worst = std::max(worst, std::fabs(predicted[k] - y[k]));
  }
  return worst <= engine_->config().match_tol;
}

size_t EndpointSession::FindMatchingRegion(const Vec& x0, const Vec& y0,
                                           const Vec& probe,
                                           const Vec& y_probe,
                                           size_t argmax) const {
  util::ReaderMutexLock lock(cache_mutex_);
  // Drift bumps invalidate the whole cache eagerly, so slots at an older
  // epoch should never be visible here; the skip is belt-and-braces so a
  // stale closed form cannot serve even mid-invalidation.
  const uint64_t current_epoch = epoch_.load(std::memory_order_relaxed);
  if (index_ != nullptr) {
    // Point location: stab the learned boxes and validate each candidate
    // with the exact predicate. Boxes only cover what traffic has
    // certified, so they can admit a false candidate (validation rejects
    // it) but a validated candidate is always a hit the linear scan would
    // also have found. The argmax(y0) forest is stabbed AND validated
    // first: in the common case the query predicts its region's own
    // class, so the steady-state hit never pays for the other C-1
    // forests. Validation is exact either way, so phase order only moves
    // work, never the outcome.
    std::vector<size_t> candidates;
    index_->CollectBucket(x0, argmax, &candidates);
    for (size_t slot : candidates) {
      if (regions_[slot].epoch < current_epoch) continue;
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
    const size_t first_phase = candidates.size();
    index_->CollectRest(x0, argmax, &candidates);
    for (size_t i = first_phase; i < candidates.size(); ++i) {
      const size_t slot = candidates[i];
      if (regions_[slot].epoch < current_epoch) continue;
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
    // No candidate survived. A learned box UNDER-covers its region until
    // traffic teaches it, so this is not yet a miss: scan the remaining
    // regions exactly like the reference leg (skipping the candidates
    // already rejected above). A match found here is a first visit to an
    // uncovered part of a cached region — the hit path then grows its
    // box, so the next nearby request resolves in the stab above. This
    // fallback is what makes the index decision-invisible; a true miss
    // pays it once and then pays the extraction that dwarfs it.
    std::sort(candidates.begin(), candidates.end());
    for (size_t slot = 0; slot < regions_.size(); ++slot) {
      if (!regions_[slot].occupied ||
          regions_[slot].epoch < current_epoch ||
          std::binary_search(candidates.begin(), candidates.end(), slot)) {
        continue;
      }
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
    return kNoSlot;
  }
  if (!engine_->config().bucket_candidates) {
    for (size_t slot = 0; slot < regions_.size(); ++slot) {
      if (!regions_[slot].occupied ||
          regions_[slot].epoch < current_epoch) {
        continue;
      }
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
    return kNoSlot;
  }

  // Bucket pass: regions anchored at the same predicted class, hottest
  // first. In the common case (the request lands in an already-seen
  // region on its majority side) this tests ~1/C of the cache. Buckets
  // are kept approximately hit-ordered by the move-toward-front
  // promotion in the hit path, so no per-scan sorting happens here.
  std::vector<char> scanned(regions_.size(), 0);
  auto it = by_argmax_.find(argmax);
  if (it != by_argmax_.end()) {
    for (size_t slot : it->second) {
      scanned[slot] = 1;
      if (regions_[slot].epoch < current_epoch) continue;
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
  }
  // Fallback pass: regions filed only under other argmax keys. A cached
  // region can span the decision boundary, so the bucket key is a
  // heuristic; this pass keeps hit behavior identical to the linear scan.
  for (size_t slot = 0; slot < regions_.size(); ++slot) {
    if (scanned[slot] || !regions_[slot].occupied ||
        regions_[slot].epoch < current_epoch) {
      continue;
    }
    if (RegionMatches(regions_[slot].model, x0, y0) &&
        RegionMatches(regions_[slot].model, probe, y_probe)) {
      return slot;
    }
  }
  return kNoSlot;
}

void EndpointSession::DropRegionAuxLocked(size_t slot) const {
  CachedRegion& victim = regions_[slot];
  by_fingerprint_.erase(victim.fingerprint);
  // Drop the victim's memo keys so a stale memo entry can never serve
  // the slot's next occupant (point-memo answers skip API validation).
  for (const PointKey& key : victim.points) {
    auto it = point_memo_.find(key);
    if (it != point_memo_.end() && it->second == slot) {
      point_memo_.erase(it);
      BumpGauge(&StatCounters::memo_bytes,
                -static_cast<int64_t>(kMemoMapEntryBytes));
    }
  }
  BumpGauge(&StatCounters::memo_bytes,
            -static_cast<int64_t>(victim.points.size() * kMemoListEntryBytes));
  victim.points.clear();
  for (size_t bucket_key : victim.bucket_keys) {
    auto bucket = by_argmax_.find(bucket_key);
    if (bucket != by_argmax_.end()) {
      auto& slots = bucket->second;
      slots.erase(std::remove(slots.begin(), slots.end(), slot),
                  slots.end());
    }
  }
  victim.bucket_keys.clear();
  if (index_ != nullptr) index_->Remove(slot);
}

void EndpointSession::CheckAuxCoherenceLocked() const {
  if (index_ == nullptr) return;
  OPENAPI_CHECK_EQ(index_->size(), OccupiedLocked());
}

size_t EndpointSession::EvictOneLocked(
    size_t protect_slot, std::vector<store::RegionRecord>* spills) const {
  // Second-chance clock: a region with recorded hits gets its counter
  // halved and survives the sweep; the first cold slot is the victim.
  // Halving strictly decreases positive counters, so the sweep
  // terminates (the caller guarantees at least one occupied,
  // unprotected region), and frequently hit regions take log2(hits)
  // sweeps to cool — the LFU-flavored survival the serving cache wants.
  for (;;) {
    clock_hand_ %= regions_.size();
    if (!regions_[clock_hand_].occupied || clock_hand_ == protect_slot) {
      ++clock_hand_;
      continue;
    }
    CachedRegion& region = regions_[clock_hand_];
    const uint32_t hits = region.hits.load(std::memory_order_relaxed);
    if (hits == 0) break;
    region.hits.store(hits >> 1, std::memory_order_relaxed);
    ++clock_hand_;
  }
  const size_t slot = clock_hand_++;
  CachedRegion& victim = regions_[slot];
  const uint64_t victim_fingerprint = victim.fingerprint;
  // Spill the victim's LEARNED box to the persistent tier before the
  // teardown: traffic may have grown it well past the certificate the
  // write-through persisted, and the store's Put re-appends only when
  // the box actually grew. The record is staged; the caller persists it
  // after releasing the cache lock (the store has its own mutex).
  if (store_ != nullptr && spills != nullptr && index_ != nullptr) {
    store::RegionRecord record;
    if (index_->ExportBox(slot, &record.lo, &record.hi)) {
      record.fingerprint = victim_fingerprint;
      // The insertion-time argmax is the front of the bucket-key list
      // (FileBucketLocked appends, eviction clears).
      record.argmax = victim.bucket_keys.empty()
                          ? static_cast<uint32_t>(linalg::ArgMax(
                                api::EvaluateLocalModel(victim.model,
                                                        victim.anchor)))
                          : static_cast<uint32_t>(victim.bucket_keys.front());
      record.anchor = victim.anchor;
      record.model = victim.model;
      spills->push_back(std::move(record));
    }
  }
  BumpGauge(&StatCounters::region_bytes,
            -static_cast<int64_t>(SlotBytes(victim)));
  // One step removes the victim from every auxiliary structure
  // (fingerprint map, memo, buckets, index) — there is no code path that
  // can leave one of them holding the dead slot.
  DropRegionAuxLocked(slot);
  // Release the payload: the byte gauge just gave these bytes back, so
  // the memory must actually go too (the slot may sit on free_slots_
  // indefinitely).
  victim.model = api::LocalLinearModel{};
  victim.anchor = Vec{};
  victim.occupied = false;
  victim.hits.store(0, std::memory_order_relaxed);
  if (evicted_fingerprints_.size() > 8 * capacity_ + 64) {
    evicted_fingerprints_.clear();  // bounded classification memory
  }
  evicted_fingerprints_.insert(victim_fingerprint);
  Bump(&StatCounters::evictions);
  RefreshIndexBytesLocked();
  return slot;
}

void EndpointSession::FilePointLocked(const PointKey& key,
                                      size_t slot) const {
  auto [it, inserted] = point_memo_.emplace(key, slot);
  if (inserted) {
    BumpGauge(&StatCounters::memo_bytes,
              static_cast<int64_t>(kMemoMapEntryBytes));
  } else {
    if (it->second == slot) return;
    it->second = slot;  // the key's old region was displaced
  }
  CachedRegion& region = regions_[slot];
  if (region.points.size() >= kMaxMemoPointsPerRegion) {
    auto oldest = point_memo_.find(region.points.front());
    if (oldest != point_memo_.end() && oldest->second == slot) {
      point_memo_.erase(oldest);
      BumpGauge(&StatCounters::memo_bytes,
                -static_cast<int64_t>(kMemoMapEntryBytes));
    }
    region.points.erase(region.points.begin());
    BumpGauge(&StatCounters::memo_bytes,
              -static_cast<int64_t>(kMemoListEntryBytes));
  }
  region.points.push_back(key);
  BumpGauge(&StatCounters::memo_bytes,
            static_cast<int64_t>(kMemoListEntryBytes));
}

void EndpointSession::FileBucketLocked(size_t slot, size_t argmax) const {
  // Membership test via the slot's own key list (one entry per filed
  // bucket, so a handful at most): slot ∈ by_argmax_[b] iff b ∈
  // bucket_keys — both are only ever mutated together, here and in
  // DropRegionAuxLocked. Scanning the bucket vector instead would be
  // O(n/C) per fill, quadratic across a large import.
  std::vector<size_t>& keys = regions_[slot].bucket_keys;
  if (std::find(keys.begin(), keys.end(), argmax) == keys.end()) {
    by_argmax_[argmax].push_back(slot);
    keys.push_back(argmax);
    if (index_ != nullptr && index_->contains(slot)) {
      index_->File(slot, argmax);
    }
  }
}

size_t EndpointSession::InsertRegion(
    api::LocalLinearModel model, uint64_t fingerprint, const Vec& anchor,
    const Vec& memo_point, size_t argmax, const Vec& lo, const Vec& hi,
    CacheOutcome* outcome, std::vector<store::RegionRecord>* spills) const {
  util::WriterMutexLock lock(cache_mutex_);
  size_t slot;
  auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) {
    slot = it->second;  // another worker extracted this region first
    if (index_ != nullptr) {
      index_->Expand(slot, lo, hi);  // union of both certificates
    }
  } else {
    CachedRegion incoming(std::move(model), fingerprint, anchor);
    incoming.epoch = epoch_.load(std::memory_order_relaxed);
    const size_t incoming_bytes = SlotBytes(incoming);
    if (byte_budget_ > 0 &&
        incoming_bytes + kMemoMapEntryBytes + kMemoListEntryBytes >
            byte_budget_) {
      // Bigger than the whole budget: the request is served from the
      // caller's copy, the region is never cached, the ceiling holds.
      return kNoSlot;
    }
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      regions_[slot] = std::move(incoming);
    } else if (capacity_ > 0 && OccupiedLocked() >= capacity_) {
      slot = EvictOneLocked(kNoSlot, spills);
      regions_[slot] = std::move(incoming);
    } else {
      slot = regions_.size();
      regions_.push_back(std::move(incoming));
    }
    by_fingerprint_.emplace(fingerprint, slot);
    BumpGauge(&StatCounters::region_bytes,
              static_cast<int64_t>(SlotBytes(regions_[slot])));
    if (index_ != nullptr) index_->Insert(slot, lo, hi);
    if (evicted_fingerprints_.erase(fingerprint) > 0 && outcome != nullptr) {
      *outcome = CacheOutcome::kEvictedRefetch;
    }
  }
  FileBucketLocked(slot, argmax);
  FilePointLocked(PointKeyOf(memo_point), slot);
  RefreshIndexBytesLocked();
  EnforceByteBudgetLocked(slot, spills);
  CheckAuxCoherenceLocked();
  if (!regions_[slot].occupied || regions_[slot].fingerprint != fingerprint) {
    return kNoSlot;  // the byte budget evicted the region straight away
  }
  return slot;
}

void EndpointSession::WriteThrough(const api::LocalLinearModel& model,
                                   uint64_t fingerprint, const Vec& anchor,
                                   size_t argmax, const Vec& lo,
                                   const Vec& hi) const {
  if (store_ == nullptr) return;
  store::RegionRecord record;
  record.fingerprint = fingerprint;
  record.argmax = static_cast<uint32_t>(argmax);
  record.anchor = anchor;
  record.lo = lo;
  record.hi = hi;
  record.model = model;
  Result<bool> appended = store_->Put(record);
  if (!appended.ok()) {
    // Persistence is best-effort from the serving path's point of view:
    // a full disk degrades the session to RAM-only, it does not fail
    // requests.
    OPENAPI_LOG(Warning) << "region write-through failed: "
                         << appended.status().message();
  } else if (*appended) {
    Bump(&StatCounters::store_appends);
  }
}

void EndpointSession::PersistSpills(
    std::vector<store::RegionRecord>* spills) const {
  if (store_ != nullptr) {
    for (const store::RegionRecord& record : *spills) {
      Result<bool> appended = store_->Put(record);
      if (!appended.ok()) {
        OPENAPI_LOG(Warning) << "eviction spill persist failed: "
                             << appended.status().message();
      } else if (*appended) {
        Bump(&StatCounters::store_appends);
      }
    }
  }
  spills->clear();
}

bool EndpointSession::ReloadFromStore(
    const Vec& x0, const Vec& y0, const Vec& probe, const Vec& y_probe,
    size_t argmax, api::LocalLinearModel* reloaded,
    std::vector<store::RegionRecord>* spills) const {
  std::vector<uint64_t> offsets;
  store_->CollectCandidates(x0, argmax, &offsets);
  for (uint64_t offset : offsets) {
    Result<store::RegionRecord> record = store_->Read(offset);
    if (!record.ok()) {
      OPENAPI_LOG(Warning) << "region log read at offset " << offset
                           << " failed: " << record.status().message();
      continue;
    }
    // Same exact predicate as a RAM candidate, against the 2-query pair
    // the request already bought: a stale, corrupt, or merely
    // box-overlapping record is rejected here, never served.
    if (!RegionMatches(record->model, x0, y0) ||
        !RegionMatches(record->model, probe, y_probe)) {
      continue;
    }
    // The record's fingerprint was computed from these exact bits by the
    // session that persisted it (the log round-trips raw doubles), so a
    // later re-extraction of the same region deduplicates against this
    // slot.
    InsertRegion(api::LocalLinearModel(record->model), record->fingerprint,
                 record->anchor, x0, argmax, record->lo, record->hi,
                 /*outcome=*/nullptr, spills);
    *reloaded = std::move(record->model);
    return true;
  }
  return false;
}

Result<size_t> EndpointSession::ImportRegion(api::LocalLinearModel model,
                                             const Vec& anchor,
                                             double edge_length) const {
  if (!engine_->config().use_region_cache) {
    return Status::FailedPrecondition(
        "region cache disabled: nothing to import into");
  }
  if (anchor.size() != api_->dim() ||
      model.bias.size() != api_->num_classes() ||
      model.weights.rows() != api_->dim() ||
      model.weights.cols() != api_->num_classes()) {
    return Status::InvalidArgument(
        "imported model/anchor shape does not match the endpoint");
  }
  const Vec y0 = api::EvaluateLocalModel(model, anchor);
  const size_t argmax = linalg::ArgMax(y0);
  const uint64_t fingerprint =
      LocalModelFingerprint(model, engine_->config().fingerprint_resolution);
  // The certified hypercube {x : |x_j - anchor_j| <= edge_length} seeds
  // the learned box, in RAM and (write-through) on the log.
  Vec lo = anchor;
  Vec hi = anchor;
  for (size_t j = 0; j < lo.size(); ++j) {
    lo[j] -= edge_length;
    hi[j] += edge_length;
  }
  WriteThrough(model, fingerprint, anchor, argmax, lo, hi);
  std::vector<store::RegionRecord> spills;
  const size_t slot =
      InsertRegion(std::move(model), fingerprint, anchor, anchor, argmax, lo,
                   hi, /*outcome=*/nullptr, &spills);
  PersistSpills(&spills);
  if (slot == kNoSlot) {
    return Status::FailedPrecondition(
        "region does not fit the session's cache byte budget");
  }
  return slot;
}

Result<Interpretation> EndpointSession::InterpretCached(
    const Vec& x0, size_t c, const RequestOptions& options, util::Rng* rng,
    uint64_t* consumed, CacheOutcome* outcome, size_t* iterations,
    ProbeRetryStats* retry_stats) const {
  const EngineConfig& config = engine_->config();
  // 1. Point memo: an exact repeat of a previously answered x0 (any class)
  //    costs zero API queries — except every drift_check_interval-th memo
  //    hit, which falls through to the validation pair below carrying a
  //    copy of the memoized model: the pair then either re-certifies the
  //    model against the live endpoint (served as kPointMemo, 2 queries)
  //    or catches a model swap and invalidates the stale cache.
  const PointKey key = PointKeyOf(x0);
  std::optional<api::LocalLinearModel> drift_check_model;
  {
    util::ReaderMutexLock lock(cache_mutex_);
    auto it = point_memo_.find(key);
    if (it != point_memo_.end() &&
        regions_[it->second].epoch ==
            epoch_.load(std::memory_order_relaxed)) {
      // The hit bump is an atomic on a mutable container: safe under the
      // shared (reader) lock.
      CachedRegion& region = regions_[it->second];
      const uint64_t interval = config.drift_check_interval;
      if (interval > 0 &&
          (memo_hit_ticks_.fetch_add(1, std::memory_order_relaxed) + 1) %
                  interval ==
              0) {
        drift_check_model = region.model;
      } else {
        region.hits.fetch_add(1, std::memory_order_relaxed);
        Bump(&StatCounters::point_memo_hits);
        *outcome = CacheOutcome::kPointMemo;
        Interpretation out;
        out.dc = api::GroundTruthDecisionFeatures(region.model, c);
        out.pairs = PairsFromModel(region.model, c);
        out.iterations = 0;
        out.edge_length = 0.0;
        out.queries = 0;
        return out;
      }
    }
  }

  // 2. Candidate scan: one batched request (x0 + validation probe) decides
  //    every cached region at once. It costs 2 queries, so it is gated on
  //    the request's budget/deadline/cancellation first — predictively,
  //    when chunked dispatch is on: this is the request's first endpoint
  //    traffic, so a deadline the estimated pair latency already blows
  //    rejects here with queries == 0 (a memoized repeat above still
  //    serves for free). The pair is timed into the endpoint's latency
  //    estimate like any probe chunk.
  const ChunkedDispatchConfig& dispatch = config.openapi.dispatch;
  const double pair_row_latency =
      dispatch.enabled ? EffectiveRowLatency(*api_, dispatch) : 0.0;
  OPENAPI_RETURN_NOT_OK(EnforceRequestOptions(options, *consumed, 2,
                                              2.0 * pair_row_latency));
  Vec probe =
      SampleHypercube(x0, config.validation_edge, /*count=*/1, rng)[0];
  // The pair goes through the retry-aware dispatch path, so a transient
  // endpoint refusal is retried under the request's retry budget instead
  // of failing the request, and refused-attempt charges land in
  // retry_stats — accounting stays exact against api.query_count().
  std::vector<Vec> pair_points{x0, probe};
  std::vector<Vec> pair(2);
  OPENAPI_RETURN_NOT_OK(DispatchProbes(*api_, pair_points, options, dispatch,
                                       consumed, &pair, /*out_offset=*/0,
                                       retry_stats));
  const Vec& y0 = pair[0];
  const Vec& y_probe = pair[1];
  const size_t argmax = linalg::ArgMax(y0);

  // 2a. Drift check resolution: the memoized model either still explains
  //     the live endpoint's answers (serve it — a kPointMemo that cost
  //     the 2-query pair) or the endpoint swapped models underneath the
  //     cache, in which case every cached/stored closed form from the
  //     old epoch is invalidated and this request re-extracts fresh.
  bool drift_refetch = false;
  if (drift_check_model.has_value()) {
    if (RegionMatches(*drift_check_model, x0, y0) &&
        RegionMatches(*drift_check_model, probe, y_probe)) {
      Bump(&StatCounters::point_memo_hits);
      *outcome = CacheOutcome::kPointMemo;
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(*drift_check_model, c);
      out.pairs = PairsFromModel(*drift_check_model, c);
      out.iterations = 0;
      out.edge_length = config.validation_edge;
      out.probes.push_back(std::move(probe));
      out.queries = 2;
      return out;
    }
    Bump(&StatCounters::drift_events);
    InvalidateStaleRegions();
    drift_refetch = true;
  }

  // Eviction spill records staged under the writer lock on any of the
  // paths below; persisted (store mutex only) after the lock is gone.
  std::vector<store::RegionRecord> spills;
  size_t slot = FindMatchingRegion(x0, y0, probe, y_probe, argmax);
  if (slot != kNoSlot) {
    // A racing ClearCache or eviction may have dropped (or refilled) the
    // slot between the scan and here, so copy under the lock with a
    // bounds check and re-validate the copy against the API output
    // before trusting it.
    std::optional<api::LocalLinearModel> model;
    uint64_t fingerprint = 0;
    {
      util::ReaderMutexLock lock(cache_mutex_);
      if (slot < regions_.size()) {
        fingerprint = regions_[slot].fingerprint;
        model = regions_[slot].model;
      }
    }
    if (model.has_value() && RegionMatches(*model, x0, y0) &&
        RegionMatches(*model, probe, y_probe)) {
      {
        // Memoize the point, and file the slot under this argmax too when
        // the fallback pass found it in another bucket (region spanning
        // the decision boundary), so the next same-side request hits the
        // bucket pass. The fingerprint check keeps a refilled slot from
        // poisoning the memo.
        util::WriterMutexLock lock(cache_mutex_);
        if (slot < regions_.size() &&
            regions_[slot].fingerprint == fingerprint) {
          FilePointLocked(key, slot);
          regions_[slot].hits.fetch_add(1, std::memory_order_relaxed);
          if (index_ != nullptr) {
            if (index_->contains(slot)) {
              // A validated hit teaches the learned box: grow it to
              // cover x0 so the next nearby request resolves in the
              // index stab instead of the fallback scan.
              index_->Expand(slot, x0);
            }
            // Buckets are not a scan structure when the index is on, so
            // the O(bucket) transpose promotion below would be pure
            // overhead (at 10^6 regions it would dominate the lookup).
            // Membership comes from the slot's own short key list; a
            // boundary-spanning region still gets filed under the new
            // argmax (which also files its index forest).
            const std::vector<size_t>& keys = regions_[slot].bucket_keys;
            if (std::find(keys.begin(), keys.end(), argmax) == keys.end()) {
              FileBucketLocked(slot, argmax);
            }
          } else {
            std::vector<size_t>& bucket = by_argmax_[argmax];
            auto pos = std::find(bucket.begin(), bucket.end(), slot);
            if (pos == bucket.end()) {
              FileBucketLocked(slot, argmax);
            } else if (pos != bucket.begin()) {
              // Transpose promotion: each hit moves the region one step
              // toward the front of its bucket, so hot regions drift to
              // the head without any per-scan sorting.
              std::iter_swap(pos, pos - 1);
            }
          }
          // The memo (and possibly the box/bucket filings) grew: keep
          // the byte ceiling while protecting the slot just served.
          RefreshIndexBytesLocked();
          EnforceByteBudgetLocked(slot, &spills);
        }
      }
      PersistSpills(&spills);
      Bump(&StatCounters::cache_hits);
      *outcome = CacheOutcome::kMemoryHit;
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(*model, c);
      out.pairs = PairsFromModel(*model, c);
      out.iterations = 0;
      out.edge_length = config.validation_edge;
      out.probes.push_back(std::move(probe));
      out.queries = 2;
      return out;
    }
    // The slot vanished under us: treat the request as a miss below.
  }

  // 2b. Persistent tier: RAM missed, but the region may sit on the
  //     session's region log (evicted earlier, or written by a previous
  //     process on this log). A record whose learned box covers x0 is
  //     read back and validated against the SAME 2-query pair — so a
  //     disk hit costs exactly what a RAM hit costs (2 queries) and
  //     saves the entire extraction.
  if (store_ != nullptr && !options.bypass_disk_tier) {
    api::LocalLinearModel reloaded;
    if (ReloadFromStore(x0, y0, probe, y_probe, argmax, &reloaded,
                        &spills)) {
      PersistSpills(&spills);
      Bump(&StatCounters::disk_hits);
      *outcome = CacheOutcome::kDiskHit;
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(reloaded, c);
      out.pairs = PairsFromModel(reloaded, c);
      out.iterations = 0;
      out.edge_length = config.validation_edge;
      out.probes.push_back(std::move(probe));
      out.queries = 2;
      return out;
    }
    PersistSpills(&spills);
  }

  // 3. Miss: full closed-form extraction with reference class 0, which
  //    yields the entire canonical classifier; the requested class is then
  //    read off the cached model (gauge invariance). A saturated class 0
  //    is handled inside the solver (adaptive reference class, converted
  //    back to reference-0 pairs), so the canonical column-0-pinned gauge
  //    is preserved here either way. The solver reports the queries it
  //    actually consumed, so stats stay exact even when it fails — and it
  //    receives the request's controls with the 2 validation queries
  //    already deducted from the budget, so the request as a whole never
  //    overspends.
  Bump(&StatCounters::cache_misses);
  *outcome = drift_refetch ? CacheOutcome::kStaleRefetch : CacheOutcome::kMiss;
  OpenApiInterpreter interpreter(config.openapi);
  // The solver receives the request's ORIGINAL controls plus the 2
  // validation queries as its consumed seed (in/out), so its budget
  // gates — and their rejection messages — account in request totals;
  // and y0 is handed over as the anchor prediction, so a miss does not
  // bill the endpoint (or the request's budget) for x0 twice. The
  // solver's scratch comes from the engine's workspace pool: every miss
  // after a worker's first runs allocation-free inside the solver.
  InterpretationEngine::WorkspaceLease lease(*engine_);
  auto solved = interpreter.InterpretCounted(*api_, x0, 0, rng, consumed,
                                             options, iterations, &y0,
                                             lease.get(), retry_stats);
  if (!solved.ok()) {
    return solved.status();
  }
  api::LocalLinearModel model =
      CanonicalModelFromPairs(solved->pairs, api_->dim());
  const uint64_t fingerprint =
      LocalModelFingerprint(model, config.fingerprint_resolution);
  Interpretation out;
  out.dc = api::GroundTruthDecisionFeatures(model, c);
  out.pairs = PairsFromModel(model, c);
  out.probes = std::move(solved->probes);
  out.iterations = solved->iterations;
  out.edge_length = solved->edge_length;
  out.queries = *consumed;
  // The solver certified the model on probes drawn from the final
  // consistent hypercube [x0 - edge, x0 + edge] per dimension — the
  // region's learned box starts as exactly that certificate, in RAM and
  // (write-through, before the model is moved away) on the region log.
  Vec lo = x0;
  Vec hi = x0;
  for (size_t j = 0; j < lo.size(); ++j) {
    lo[j] -= solved->edge_length;
    hi[j] += solved->edge_length;
  }
  WriteThrough(model, fingerprint, x0, argmax, lo, hi);
  // A drift refetch keeps its kStaleRefetch classification: the
  // invalidation cleared the eviction history anyway, and an eviction
  // refetch label would hide the drift event from the caller.
  InsertRegion(std::move(model), fingerprint, x0, x0, argmax, lo, hi,
               drift_refetch ? nullptr : outcome, &spills);
  PersistSpills(&spills);
  return out;
}

Result<Interpretation> EndpointSession::Serve(
    const EngineRequest& request, uint64_t seed, uint64_t stream,
    uint64_t* consumed, CacheOutcome* outcome, size_t* iterations,
    ProbeRetryStats* retry_stats) const {
  if (request.x0.size() != api_->dim()) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (request.c >= api_->num_classes() || api_->num_classes() < 2) {
    return Status::InvalidArgument("bad class configuration");
  }
  // Pre-flight: a request that is already cancelled or past its deadline
  // is rejected before it touches the cache or the endpoint.
  OPENAPI_RETURN_NOT_OK(CheckRequestControls(request.options, 0, 0));
  util::Rng rng(util::Rng::MixSeed(seed, stream));
  if (!engine_->config().use_region_cache) {
    OpenApiInterpreter interpreter(engine_->config().openapi);
    Bump(&StatCounters::cache_misses);  // attempted a full solve
    InterpretationEngine::WorkspaceLease lease(*engine_);
    return interpreter.InterpretCounted(*api_, request.x0, request.c, &rng,
                                        consumed, request.options,
                                        iterations, /*y0_hint=*/nullptr,
                                        lease.get(), retry_stats);
  }
  return InterpretCached(request.x0, request.c, request.options, &rng,
                         consumed, outcome, iterations, retry_stats);
}

EngineResponse EndpointSession::Interpret(const EngineRequest& request,
                                          uint64_t seed,
                                          uint64_t stream) const {
  util::Timer timer;
  Bump(&StatCounters::requests);
  uint64_t consumed = 0;
  CacheOutcome outcome = CacheOutcome::kBypass;
  size_t iterations = 0;
  ProbeRetryStats retry_stats;
  Result<Interpretation> result = Serve(request, seed, stream, &consumed,
                                        &outcome, &iterations, &retry_stats);
  if (!result.ok()) Bump(&StatCounters::failures);
  if (consumed > 0) Bump(&StatCounters::queries, consumed);
  if (retry_stats.wasted_queries > 0) {
    Bump(&StatCounters::wasted_queries, retry_stats.wasted_queries);
  }
  if (retry_stats.retries > 0) {
    Bump(&StatCounters::retries, retry_stats.retries);
  }
  EngineResponse response{std::move(result)};
  response.queries = consumed;
  response.cache_outcome = outcome;
  response.shrink_iterations = iterations;
  response.latency_ms = timer.ElapsedMillis();
  return response;
}

std::vector<EngineResponse> EndpointSession::InterpretAll(
    const std::vector<EngineRequest>& requests, uint64_t seed) const {
  std::vector<std::optional<EngineResponse>> scratch(requests.size());
  util::ParallelFor(engine_->pool_, requests.size(), [&](size_t i) {
    scratch[i].emplace(Interpret(requests[i], seed, /*stream=*/i));
  });
  std::vector<EngineResponse> responses;
  responses.reserve(requests.size());
  for (auto& r : scratch) responses.push_back(std::move(*r));
  return responses;
}

std::future<EngineResponse> EndpointSession::SubmitAsync(
    EngineRequest request, uint64_t seed, uint64_t stream) const {
  // packaged_task is move-only and ThreadPool::Submit takes a copyable
  // std::function, hence the shared_ptr wrapper. The task holds the
  // session alive; the engine is drained by its destructor.
  auto self = shared_from_this();
  // The queue timer starts NOW, at submission: an async response's
  // latency covers the time spent waiting for a worker too, which is
  // what a client actually observes under load.
  util::Timer queue_timer;
  auto task = std::make_shared<std::packaged_task<EngineResponse()>>(
      [self, request = std::move(request), seed, stream,
       queue_timer]() mutable {
        EngineResponse response = self->Interpret(request, seed, stream);
        response.latency_ms = queue_timer.ElapsedMillis();
        // Drop the session reference BEFORE the future is made ready
        // (packaged_task publishes the result after this returns). If it
        // survived until the worker destroyed its std::function — which
        // happens after EndAsyncTask below, i.e. after the engine's
        // destructor drain — a caller tearing down right after get()
        // could lose the session/engine under a still-referencing
        // worker, and ~EndpointSession would touch a dead engine.
        self.reset();
        return response;
      });
  std::future<EngineResponse> future = task->get_future();
  const InterpretationEngine* engine = engine_;
  engine->BeginAsyncTask();
  engine->pool_->Submit([engine, task]() mutable {
    (*task)();
    task.reset();  // release task state before the drain gate opens
    engine->EndAsyncTask();
  });
  return future;
}

SessionStream EndpointSession::InterpretStream(
    std::vector<EngineRequest> requests, uint64_t seed) const {
  SessionStream stream;
  stream.total_ = requests.size();
  stream.shared_ = std::make_shared<SessionStream::Shared>();
  auto shared = stream.shared_;
  shared->requests = std::move(requests);
  auto self = shared_from_this();
  const InterpretationEngine* engine = engine_;
  util::Timer queue_timer;  // latency includes the wait for a worker
  for (size_t i = 0; i < shared->requests.size(); ++i) {
    engine->BeginAsyncTask();
    engine->pool_->Submit([self, engine, shared, seed, i,
                           queue_timer]() mutable {
      EngineResponse response =
          self->Interpret(shared->requests[i], seed, /*stream=*/i);
      response.latency_ms = queue_timer.ElapsedMillis();
      {
        util::MutexLock lock(shared->mutex);
        shared->completed.push_back(
            SessionStream::Item{i, std::move(response)});
      }
      shared->ready.NotifyAll();
      // Same ordering rule as SubmitAsync: the worker's session/stream
      // references must die before EndAsyncTask opens the engine's
      // destructor drain gate — a last-reference release after it would
      // run ~EndpointSession against a destroyed engine.
      self.reset();
      shared.reset();
      engine->EndAsyncTask();
    });
  }
  return stream;
}

size_t EndpointSession::cache_size() const {
  util::ReaderMutexLock lock(cache_mutex_);
  return OccupiedLocked();
}

EngineStats EndpointSession::stats() const { return Snapshot(stats_); }

void EndpointSession::ResetStats() const { Reset(stats_); }

void EndpointSession::ClearCache() const {
  util::WriterMutexLock lock(cache_mutex_);
  ClearCacheLocked();
}

void EndpointSession::InvalidateStaleRegions() const {
  // The store's epoch advances FIRST, outside the cache lock (the two
  // locks never nest): a concurrent write-through is then stamped with
  // the new epoch at worst — never an old-epoch record slipping in after
  // the invalidation.
  uint64_t next = 0;
  if (store_ != nullptr) next = store_->BumpEpoch();
  util::WriterMutexLock lock(cache_mutex_);
  if (store_ == nullptr) {
    next = epoch_.load(std::memory_order_relaxed) + 1;
  }
  // Concurrent drift events race to publish their store epochs; the max
  // guard keeps the session epoch monotonic.
  if (next > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(next, std::memory_order_relaxed);
  }
  Bump(&StatCounters::stale_invalidations, OccupiedLocked());
  ClearCacheLocked();
}

void EndpointSession::ClearCacheLocked() const {
  regions_.clear();
  by_fingerprint_.clear();
  by_argmax_.clear();
  point_memo_.clear();
  evicted_fingerprints_.clear();
  clock_hand_ = 0;
  free_slots_.clear();
  if (index_ != nullptr) index_->Clear();
  // Gauges follow the residency to zero (balanced deltas keep the
  // engine aggregate consistent across the session's lifetime).
  BumpGauge(&StatCounters::region_bytes,
            -static_cast<int64_t>(
                stats_.region_bytes.load(std::memory_order_relaxed)));
  BumpGauge(&StatCounters::memo_bytes,
            -static_cast<int64_t>(
                stats_.memo_bytes.load(std::memory_order_relaxed)));
  RefreshIndexBytesLocked();
  CheckAuxCoherenceLocked();
}

// ---------------------------------------------------------------------------
// InterpretationEngine
// ---------------------------------------------------------------------------

InterpretationEngine::InterpretationEngine(EngineConfig config)
    : config_(config) {
  if (config_.num_threads > 0) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = util::SharedThreadPool(
        util::DefaultThreadCount(config_.max_threads));
  }
}

InterpretationEngine::~InterpretationEngine() {
  // Drain async work that still references this engine. Tasks on the
  // shared pool outlive owned infrastructure, so this must come first;
  // the owned pool (if any) additionally drains in its own destructor.
  util::MutexLock lock(async_mutex_);
  while (async_outstanding_ != 0) async_idle_.Wait(async_mutex_);
}

SolverWorkspace* InterpretationEngine::AcquireWorkspace() const {
  util::MutexLock lock(workspace_mutex_);
  if (!free_workspaces_.empty()) {
    SolverWorkspace* workspace = free_workspaces_.back();
    free_workspaces_.pop_back();
    return workspace;
  }
  // First time this many requests run at once: grow the pool by one. The
  // pool size therefore converges to the engine's peak request
  // concurrency (one workspace per pool worker in steady state).
  workspaces_.push_back(std::make_unique<SolverWorkspace>());
  return workspaces_.back().get();
}

void InterpretationEngine::ReleaseWorkspace(
    SolverWorkspace* workspace) const {
  // Sizes reset, capacity kept: the next request regrows nothing.
  workspace->Clear();
  util::MutexLock lock(workspace_mutex_);
  for (SolverWorkspace* free_workspace : free_workspaces_) {
    // A workspace already on the free list being released again means
    // two requests held it concurrently — corruption, not a recoverable
    // state.
    OPENAPI_CHECK(free_workspace != workspace);
  }
  free_workspaces_.push_back(workspace);
}

size_t InterpretationEngine::workspace_pool_size() const {
  util::MutexLock lock(workspace_mutex_);
  return workspaces_.size();
}

void InterpretationEngine::BeginAsyncTask() const {
  util::MutexLock lock(async_mutex_);
  ++async_outstanding_;
}

void InterpretationEngine::EndAsyncTask() const {
  util::MutexLock lock(async_mutex_);
  if (--async_outstanding_ == 0) async_idle_.NotifyAll();
}

std::shared_ptr<EndpointSession> InterpretationEngine::OpenSession(
    const api::PredictionApi& api, size_t cache_capacity) const {
  SessionOptions options;
  options.cache_capacity = cache_capacity;
  return OpenSession(api, options);
}

std::shared_ptr<EndpointSession> InterpretationEngine::OpenSession(
    const api::PredictionApi& api, const SessionOptions& options) const {
  return std::shared_ptr<EndpointSession>(new EndpointSession(
      this, &api,
      options.cache_capacity > 0 ? options.cache_capacity
                                 : config_.cache_capacity,
      options.cache_capacity_bytes > 0 ? options.cache_capacity_bytes
                                       : config_.cache_capacity_bytes,
      options.store));
}

EngineStats InterpretationEngine::stats() const {
  return EndpointSession::Snapshot(*stats_);
}

void InterpretationEngine::ResetStats() const {
  EndpointSession::Reset(*stats_);
}

}  // namespace openapi::interpret
