#include "interpret/interpretation_engine.h"

#include <cmath>
#include <cstring>
#include <optional>

#include "api/ground_truth.h"

namespace openapi::interpret {
namespace {

constexpr size_t kNoSlot = static_cast<size_t>(-1);

/// Core parameters of `model` for class c against every c' != c, in the
/// order Interpretation::pairs documents.
std::vector<CoreParameters> PairsFromModel(const api::LocalLinearModel& model,
                                           size_t c) {
  const size_t num_classes = model.bias.size();
  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == c) continue;
    pairs.push_back(api::GroundTruthCoreParameters(model, c, c_prime));
  }
  return pairs;
}

}  // namespace

InterpretationEngine::InterpretationEngine(EngineConfig config)
    : config_(config) {
  const size_t threads = config_.num_threads > 0
                             ? config_.num_threads
                             : util::DefaultThreadCount();
  pool_ = std::make_unique<util::ThreadPool>(threads);
}

std::pair<uint64_t, uint64_t> InterpretationEngine::PointKey(const Vec& x0) {
  // Two FNV-1a streams with different offsets over the raw double bits.
  uint64_t h1 = 1469598103934665603ULL;
  uint64_t h2 = 0xcbf29ce484222325ULL ^ 0x9e3779b97f4a7c15ULL;
  for (double v : x0) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h1 = (h1 ^ bits) * 1099511628211ULL;
    h2 = (h2 ^ (bits + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
  }
  h1 = (h1 ^ x0.size()) * 1099511628211ULL;
  return {h1, h2};
}

bool InterpretationEngine::RegionMatches(const api::LocalLinearModel& model,
                                         const Vec& x, const Vec& y) const {
  Vec predicted = api::EvaluateLocalModel(model, x);
  double worst = 0.0;
  for (size_t k = 0; k < y.size(); ++k) {
    worst = std::max(worst, std::fabs(predicted[k] - y[k]));
  }
  return worst <= config_.match_tol;
}

size_t InterpretationEngine::FindMatchingRegion(const Vec& x0, const Vec& y0,
                                                const Vec& probe,
                                                const Vec& y_probe) const {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  for (size_t slot = 0; slot < regions_.size(); ++slot) {
    if (RegionMatches(regions_[slot].model, x0, y0) &&
        RegionMatches(regions_[slot].model, probe, y_probe)) {
      return slot;
    }
  }
  return kNoSlot;
}

size_t InterpretationEngine::InsertRegion(api::LocalLinearModel model,
                                          uint64_t fingerprint,
                                          const Vec& x0) const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  size_t slot;
  auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) {
    slot = it->second;  // another worker extracted this region first
  } else {
    slot = regions_.size();
    regions_.push_back(CachedRegion{std::move(model), fingerprint});
    by_fingerprint_.emplace(fingerprint, slot);
  }
  point_memo_[PointKey(x0)] = slot;
  return slot;
}

Result<Interpretation> InterpretationEngine::InterpretCached(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  // 1. Point memo: an exact repeat of a previously answered x0 (any class)
  //    costs zero API queries.
  const auto key = PointKey(x0);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = point_memo_.find(key);
    if (it != point_memo_.end()) {
      const CachedRegion& region = regions_[it->second];
      stat_point_memo_hits_.fetch_add(1, std::memory_order_relaxed);
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(region.model, c);
      out.pairs = PairsFromModel(region.model, c);
      out.iterations = 0;
      out.edge_length = 0.0;
      out.queries = 0;
      return out;
    }
  }

  // 2. Candidate scan: one batched request (x0 + validation probe) decides
  //    every cached region at once.
  Vec probe =
      SampleHypercube(x0, config_.validation_edge, /*count=*/1, rng)[0];
  std::vector<Vec> pair = api.PredictBatch({x0, probe});
  const Vec& y0 = pair[0];
  const Vec& y_probe = pair[1];
  size_t slot = FindMatchingRegion(x0, y0, probe, y_probe);
  if (slot != kNoSlot) {
    api::LocalLinearModel model;
    {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      model = regions_[slot].model;
    }
    {
      std::unique_lock<std::shared_mutex> lock(cache_mutex_);
      point_memo_[key] = slot;
    }
    stat_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    stat_queries_.fetch_add(2, std::memory_order_relaxed);
    Interpretation out;
    out.dc = api::GroundTruthDecisionFeatures(model, c);
    out.pairs = PairsFromModel(model, c);
    out.iterations = 0;
    out.edge_length = config_.validation_edge;
    out.probes.push_back(std::move(probe));
    out.queries = 2;
    return out;
  }

  // 3. Miss: full closed-form extraction with reference class 0, which
  //    yields the entire canonical classifier; the requested class is then
  //    read off the cached model (gauge invariance).
  stat_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  OpenApiInterpreter interpreter(config_.openapi);
  auto solved = interpreter.Interpret(api, x0, 0, rng);
  if (!solved.ok()) {
    // DidNotConverge consumed its full probe budget; account for it.
    const size_t d = api.dim();
    const uint64_t consumed =
        solved.status().IsDidNotConverge()
            ? 2 + 1 + config_.openapi.max_iterations * (d + 1)
            : 2;
    stat_queries_.fetch_add(consumed, std::memory_order_relaxed);
    return solved.status();
  }
  api::LocalLinearModel model =
      CanonicalModelFromPairs(solved->pairs, api.dim());
  const uint64_t fingerprint =
      LocalModelFingerprint(model, config_.fingerprint_resolution);
  Interpretation out;
  out.dc = api::GroundTruthDecisionFeatures(model, c);
  out.pairs = PairsFromModel(model, c);
  out.probes = std::move(solved->probes);
  out.iterations = solved->iterations;
  out.edge_length = solved->edge_length;
  out.queries = 2 + solved->queries;
  stat_queries_.fetch_add(out.queries, std::memory_order_relaxed);
  InsertRegion(std::move(model), fingerprint, x0);
  return out;
}

Result<Interpretation> InterpretationEngine::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c, uint64_t seed,
    uint64_t stream) const {
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  if (x0.size() != api.dim()) {
    stat_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= api.num_classes() || api.num_classes() < 2) {
    stat_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("bad class configuration");
  }
  util::Rng rng(util::Rng::MixSeed(seed, stream));
  Result<Interpretation> result =
      config_.use_region_cache
          ? InterpretCached(api, x0, c, &rng)
          : OpenApiInterpreter(config_.openapi).Interpret(api, x0, c, &rng);
  if (!config_.use_region_cache) {
    if (result.ok()) {
      stat_queries_.fetch_add(result->queries, std::memory_order_relaxed);
      stat_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDidNotConverge()) {
      stat_queries_.fetch_add(
          1 + config_.openapi.max_iterations * (api.dim() + 1),
          std::memory_order_relaxed);
    }
  }
  if (!result.ok()) stat_failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Result<Interpretation>> InterpretationEngine::InterpretAll(
    const api::PredictionApi& api, const std::vector<EngineRequest>& requests,
    uint64_t seed) const {
  std::vector<std::optional<Result<Interpretation>>> scratch(requests.size());
  util::ParallelFor(pool_.get(), requests.size(), [&](size_t i) {
    scratch[i].emplace(
        Interpret(api, requests[i].x0, requests[i].c, seed, /*stream=*/i));
  });
  std::vector<Result<Interpretation>> results;
  results.reserve(requests.size());
  for (auto& r : scratch) results.push_back(std::move(*r));
  return results;
}

size_t InterpretationEngine::cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  return regions_.size();
}

EngineStats InterpretationEngine::stats() const {
  EngineStats s;
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.point_memo_hits = stat_point_memo_hits_.load(std::memory_order_relaxed);
  s.cache_hits = stat_cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = stat_cache_misses_.load(std::memory_order_relaxed);
  s.failures = stat_failures_.load(std::memory_order_relaxed);
  s.queries = stat_queries_.load(std::memory_order_relaxed);
  return s;
}

void InterpretationEngine::ResetStats() const {
  stat_requests_.store(0, std::memory_order_relaxed);
  stat_point_memo_hits_.store(0, std::memory_order_relaxed);
  stat_cache_hits_.store(0, std::memory_order_relaxed);
  stat_cache_misses_.store(0, std::memory_order_relaxed);
  stat_failures_.store(0, std::memory_order_relaxed);
  stat_queries_.store(0, std::memory_order_relaxed);
}

void InterpretationEngine::ClearCache() const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  regions_.clear();
  by_fingerprint_.clear();
  point_memo_.clear();
}

}  // namespace openapi::interpret
