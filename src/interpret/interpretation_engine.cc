#include "interpret/interpretation_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "api/ground_truth.h"

namespace openapi::interpret {
namespace {

constexpr size_t kNoSlot = static_cast<size_t>(-1);

/// Core parameters of `model` for class c against every c' != c, in the
/// order Interpretation::pairs documents.
std::vector<CoreParameters> PairsFromModel(const api::LocalLinearModel& model,
                                           size_t c) {
  const size_t num_classes = model.bias.size();
  std::vector<CoreParameters> pairs;
  pairs.reserve(num_classes - 1);
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == c) continue;
    pairs.push_back(api::GroundTruthCoreParameters(model, c, c_prime));
  }
  return pairs;
}

}  // namespace

// GCC 12 reports spurious -Wmaybe-uninitialized when a variant-backed
// Result moves out of the deque into the returned optional (the
// PR105562 family of false positives); every Item is fully constructed
// by a worker before it is queued.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
std::optional<InterpretationStream::Item> InterpretationStream::Next() {
  if (shared_ == nullptr || delivered_ == total_) return std::nullopt;
  std::unique_lock<std::mutex> lock(shared_->mutex);
  // delivered_ < total_, so an undelivered item is either queued already
  // or still running on the pool and will be queued when it finishes.
  shared_->ready.wait(lock, [this] { return !shared_->completed.empty(); });
  std::optional<Item> item;
  item.emplace(std::move(shared_->completed.front()));
  shared_->completed.pop_front();
  ++delivered_;
  return item;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

InterpretationEngine::InterpretationEngine(EngineConfig config)
    : config_(config) {
  if (config_.num_threads > 0) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = util::SharedThreadPool(
        util::DefaultThreadCount(config_.max_threads));
  }
}

InterpretationEngine::~InterpretationEngine() {
  // Drain async work that still references this engine. Tasks on the
  // shared pool outlive owned infrastructure, so this must come first;
  // the owned pool (if any) additionally drains in its own destructor.
  std::unique_lock<std::mutex> lock(async_mutex_);
  async_idle_.wait(lock, [this] { return async_outstanding_ == 0; });
}

void InterpretationEngine::BeginAsyncTask() const {
  std::lock_guard<std::mutex> lock(async_mutex_);
  ++async_outstanding_;
}

void InterpretationEngine::EndAsyncTask() const {
  std::lock_guard<std::mutex> lock(async_mutex_);
  if (--async_outstanding_ == 0) async_idle_.notify_all();
}

std::pair<uint64_t, uint64_t> InterpretationEngine::PointKey(const Vec& x0) {
  // Two FNV-1a streams with different offsets over the raw double bits.
  uint64_t h1 = 1469598103934665603ULL;
  uint64_t h2 = 0xcbf29ce484222325ULL ^ 0x9e3779b97f4a7c15ULL;
  for (double v : x0) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h1 = (h1 ^ bits) * 1099511628211ULL;
    h2 = (h2 ^ (bits + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
  }
  h1 = (h1 ^ x0.size()) * 1099511628211ULL;
  return {h1, h2};
}

bool InterpretationEngine::RegionMatches(const api::LocalLinearModel& model,
                                         const Vec& x, const Vec& y) const {
  Vec predicted = api::EvaluateLocalModel(model, x);
  double worst = 0.0;
  for (size_t k = 0; k < y.size(); ++k) {
    worst = std::max(worst, std::fabs(predicted[k] - y[k]));
  }
  return worst <= config_.match_tol;
}

size_t InterpretationEngine::FindMatchingRegion(const Vec& x0, const Vec& y0,
                                                const Vec& probe,
                                                const Vec& y_probe,
                                                size_t argmax) const {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  if (!config_.bucket_candidates) {
    for (size_t slot = 0; slot < regions_.size(); ++slot) {
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
    return kNoSlot;
  }

  // Bucket pass: regions anchored at the same predicted class, hottest
  // first. In the common case (the request lands in an already-seen
  // region on its majority side) this tests ~1/C of the cache. Buckets
  // are kept approximately hit-ordered by the move-toward-front
  // promotion in the hit path, so no per-scan sorting happens here.
  std::vector<char> scanned(regions_.size(), 0);
  auto it = by_argmax_.find(argmax);
  if (it != by_argmax_.end()) {
    for (size_t slot : it->second) {
      scanned[slot] = 1;
      if (RegionMatches(regions_[slot].model, x0, y0) &&
          RegionMatches(regions_[slot].model, probe, y_probe)) {
        return slot;
      }
    }
  }
  // Fallback pass: regions filed only under other argmax keys. A cached
  // region can span the decision boundary, so the bucket key is a
  // heuristic; this pass keeps hit behavior identical to the linear scan.
  for (size_t slot = 0; slot < regions_.size(); ++slot) {
    if (scanned[slot]) continue;
    if (RegionMatches(regions_[slot].model, x0, y0) &&
        RegionMatches(regions_[slot].model, probe, y_probe)) {
      return slot;
    }
  }
  return kNoSlot;
}

size_t InterpretationEngine::InsertRegion(api::LocalLinearModel model,
                                          uint64_t fingerprint,
                                          const Vec& x0,
                                          size_t argmax) const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  size_t slot;
  auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) {
    slot = it->second;  // another worker extracted this region first
  } else {
    slot = regions_.size();
    regions_.push_back(CachedRegion{std::move(model), fingerprint});
    by_fingerprint_.emplace(fingerprint, slot);
  }
  std::vector<size_t>& bucket = by_argmax_[argmax];
  if (std::find(bucket.begin(), bucket.end(), slot) == bucket.end()) {
    bucket.push_back(slot);
  }
  point_memo_[PointKey(x0)] = slot;
  return slot;
}

Result<Interpretation> InterpretationEngine::InterpretCached(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  // 1. Point memo: an exact repeat of a previously answered x0 (any class)
  //    costs zero API queries.
  const auto key = PointKey(x0);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = point_memo_.find(key);
    if (it != point_memo_.end()) {
      const CachedRegion& region = regions_[it->second];
      stat_point_memo_hits_.fetch_add(1, std::memory_order_relaxed);
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(region.model, c);
      out.pairs = PairsFromModel(region.model, c);
      out.iterations = 0;
      out.edge_length = 0.0;
      out.queries = 0;
      return out;
    }
  }

  // 2. Candidate scan: one batched request (x0 + validation probe) decides
  //    every cached region at once.
  Vec probe =
      SampleHypercube(x0, config_.validation_edge, /*count=*/1, rng)[0];
  std::vector<Vec> pair = api.PredictBatch({x0, probe});
  const Vec& y0 = pair[0];
  const Vec& y_probe = pair[1];
  const size_t argmax = linalg::ArgMax(y0);
  size_t slot = FindMatchingRegion(x0, y0, probe, y_probe, argmax);
  if (slot != kNoSlot) {
    // A racing ClearCache may have dropped (or refilled) the slot between
    // the scan and here, so copy under the lock with a bounds check and
    // re-validate the copy against the API output before trusting it.
    std::optional<api::LocalLinearModel> model;
    uint64_t fingerprint = 0;
    {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      if (slot < regions_.size()) {
        fingerprint = regions_[slot].fingerprint;
        model = regions_[slot].model;
      }
    }
    if (model.has_value() && RegionMatches(*model, x0, y0) &&
        RegionMatches(*model, probe, y_probe)) {
      {
        // Memoize the point, and file the slot under this argmax too when
        // the fallback pass found it in another bucket (region spanning
        // the decision boundary), so the next same-side request hits the
        // bucket pass. The fingerprint check keeps a refilled slot from
        // poisoning the memo.
        std::unique_lock<std::shared_mutex> lock(cache_mutex_);
        if (slot < regions_.size() &&
            regions_[slot].fingerprint == fingerprint) {
          point_memo_[key] = slot;
          std::vector<size_t>& bucket = by_argmax_[argmax];
          auto pos = std::find(bucket.begin(), bucket.end(), slot);
          if (pos == bucket.end()) {
            bucket.push_back(slot);
          } else if (pos != bucket.begin()) {
            // Transpose promotion: each hit moves the region one step
            // toward the front of its bucket, so hot regions drift to
            // the head without any per-scan sorting.
            std::iter_swap(pos, pos - 1);
          }
        }
      }
      stat_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stat_queries_.fetch_add(2, std::memory_order_relaxed);
      Interpretation out;
      out.dc = api::GroundTruthDecisionFeatures(*model, c);
      out.pairs = PairsFromModel(*model, c);
      out.iterations = 0;
      out.edge_length = config_.validation_edge;
      out.probes.push_back(std::move(probe));
      out.queries = 2;
      return out;
    }
    // The slot vanished under us: treat the request as a miss below.
  }

  // 3. Miss: full closed-form extraction with reference class 0, which
  //    yields the entire canonical classifier; the requested class is then
  //    read off the cached model (gauge invariance). A saturated class 0
  //    is handled inside the solver (adaptive reference class, converted
  //    back to reference-0 pairs), so the canonical column-0-pinned gauge
  //    is preserved here either way. The solver reports the queries it
  //    actually consumed, so stats stay exact even when it fails.
  stat_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  OpenApiInterpreter interpreter(config_.openapi);
  uint64_t consumed = 0;
  auto solved = interpreter.InterpretCounted(api, x0, 0, rng, &consumed);
  stat_queries_.fetch_add(2 + consumed, std::memory_order_relaxed);
  if (!solved.ok()) {
    return solved.status();
  }
  api::LocalLinearModel model =
      CanonicalModelFromPairs(solved->pairs, api.dim());
  const uint64_t fingerprint =
      LocalModelFingerprint(model, config_.fingerprint_resolution);
  Interpretation out;
  out.dc = api::GroundTruthDecisionFeatures(model, c);
  out.pairs = PairsFromModel(model, c);
  out.probes = std::move(solved->probes);
  out.iterations = solved->iterations;
  out.edge_length = solved->edge_length;
  out.queries = 2 + solved->queries;
  InsertRegion(std::move(model), fingerprint, x0, argmax);
  return out;
}

Result<Interpretation> InterpretationEngine::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c, uint64_t seed,
    uint64_t stream) const {
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  if (x0.size() != api.dim()) {
    stat_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= api.num_classes() || api.num_classes() < 2) {
    stat_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("bad class configuration");
  }
  util::Rng rng(util::Rng::MixSeed(seed, stream));
  Result<Interpretation> result = [&]() -> Result<Interpretation> {
    if (config_.use_region_cache) return InterpretCached(api, x0, c, &rng);
    uint64_t consumed = 0;
    auto solved = OpenApiInterpreter(config_.openapi)
                      .InterpretCounted(api, x0, c, &rng, &consumed);
    stat_queries_.fetch_add(consumed, std::memory_order_relaxed);
    if (solved.ok()) {
      stat_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return solved;
  }();
  if (!result.ok()) stat_failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Result<Interpretation>> InterpretationEngine::InterpretAll(
    const api::PredictionApi& api, const std::vector<EngineRequest>& requests,
    uint64_t seed) const {
  std::vector<std::optional<Result<Interpretation>>> scratch(requests.size());
  util::ParallelFor(pool_, requests.size(), [&](size_t i) {
    scratch[i].emplace(
        Interpret(api, requests[i].x0, requests[i].c, seed, /*stream=*/i));
  });
  std::vector<Result<Interpretation>> results;
  results.reserve(requests.size());
  for (auto& r : scratch) results.push_back(std::move(*r));
  return results;
}

std::future<Result<Interpretation>> InterpretationEngine::SubmitAsync(
    const api::PredictionApi& api, EngineRequest request, uint64_t seed,
    uint64_t stream) const {
  // packaged_task is move-only and ThreadPool::Submit takes a copyable
  // std::function, hence the shared_ptr wrapper.
  auto task = std::make_shared<std::packaged_task<Result<Interpretation>()>>(
      [this, &api, request = std::move(request), seed, stream]() {
        return Interpret(api, request.x0, request.c, seed, stream);
      });
  std::future<Result<Interpretation>> future = task->get_future();
  BeginAsyncTask();
  pool_->Submit([this, task] {
    (*task)();
    EndAsyncTask();
  });
  return future;
}

InterpretationStream InterpretationEngine::InterpretStream(
    const api::PredictionApi& api, std::vector<EngineRequest> requests,
    uint64_t seed) const {
  InterpretationStream stream;
  stream.total_ = requests.size();
  stream.shared_ = std::make_shared<InterpretationStream::Shared>();
  auto shared = stream.shared_;
  shared->requests = std::move(requests);
  for (size_t i = 0; i < shared->requests.size(); ++i) {
    BeginAsyncTask();
    pool_->Submit([this, &api, shared, seed, i] {
      Result<Interpretation> result = Interpret(
          api, shared->requests[i].x0, shared->requests[i].c, seed, i);
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->completed.push_back(
            InterpretationStream::Item{i, std::move(result)});
      }
      shared->ready.notify_all();
      EndAsyncTask();
    });
  }
  return stream;
}

size_t InterpretationEngine::cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  return regions_.size();
}

EngineStats InterpretationEngine::stats() const {
  EngineStats s;
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.point_memo_hits = stat_point_memo_hits_.load(std::memory_order_relaxed);
  s.cache_hits = stat_cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = stat_cache_misses_.load(std::memory_order_relaxed);
  s.failures = stat_failures_.load(std::memory_order_relaxed);
  s.queries = stat_queries_.load(std::memory_order_relaxed);
  return s;
}

void InterpretationEngine::ResetStats() const {
  stat_requests_.store(0, std::memory_order_relaxed);
  stat_point_memo_hits_.store(0, std::memory_order_relaxed);
  stat_cache_hits_.store(0, std::memory_order_relaxed);
  stat_cache_misses_.store(0, std::memory_order_relaxed);
  stat_failures_.store(0, std::memory_order_relaxed);
  stat_queries_.store(0, std::memory_order_relaxed);
}

void InterpretationEngine::ClearCache() const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  regions_.clear();
  by_fingerprint_.clear();
  by_argmax_.clear();
  point_memo_.clear();
}

}  // namespace openapi::interpret
