#include "interpret/request_options.h"

#include "util/string_util.h"

namespace openapi::interpret {

Status EnforceRequestOptions(const RequestOptions& options,
                             uint64_t consumed, uint64_t next_cost,
                             double estimated_seconds) {
  if (options.cancel.cancel_requested()) {
    return Status::Cancelled(util::StrFormat(
        "request cancelled after %llu queries",
        static_cast<unsigned long long>(consumed)));
  }
  if (options.deadline.has_value()) {
    const auto now = util::EffectiveClock(options.clock)->Now();
    if (now >= *options.deadline) {
      return Status::DeadlineExceeded(util::StrFormat(
          "deadline exceeded after %llu queries",
          static_cast<unsigned long long>(consumed)));
    }
    if (estimated_seconds > 0.0 &&
        std::chrono::duration<double>(*options.deadline - now).count() <=
            estimated_seconds) {
      return Status::DeadlineExceeded(util::StrFormat(
          "next batch of %llu rows predicted to take %.2f ms, past the "
          "deadline; %llu queries consumed",
          static_cast<unsigned long long>(next_cost),
          estimated_seconds * 1e3,
          static_cast<unsigned long long>(consumed)));
    }
  }
  if (options.max_queries > 0 && consumed + next_cost > options.max_queries) {
    return Status::BudgetExhausted(util::StrFormat(
        "query budget %llu exhausted: %llu consumed, next batch needs %llu",
        static_cast<unsigned long long>(options.max_queries),
        static_cast<unsigned long long>(consumed),
        static_cast<unsigned long long>(next_cost)));
  }
  return Status::OK();
}

Status CheckRequestControls(const RequestOptions& options, uint64_t consumed,
                            uint64_t next_cost) {
  return EnforceRequestOptions(options, consumed, next_cost,
                               /*estimated_seconds=*/0.0);
}

}  // namespace openapi::interpret
