#include "interpret/request_options.h"

#include "util/string_util.h"

namespace openapi::interpret {

Status CheckRequestControls(const RequestOptions& options, uint64_t consumed,
                            uint64_t next_cost) {
  if (options.cancel.cancel_requested()) {
    return Status::Cancelled(util::StrFormat(
        "request cancelled after %llu queries",
        static_cast<unsigned long long>(consumed)));
  }
  if (options.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *options.deadline) {
    return Status::DeadlineExceeded(util::StrFormat(
        "deadline exceeded after %llu queries",
        static_cast<unsigned long long>(consumed)));
  }
  if (options.max_queries > 0 && consumed + next_cost > options.max_queries) {
    return Status::BudgetExhausted(util::StrFormat(
        "query budget %llu exhausted: %llu consumed, next batch needs %llu",
        static_cast<unsigned long long>(options.max_queries),
        static_cast<unsigned long long>(consumed),
        static_cast<unsigned long long>(next_cost)));
  }
  return Status::OK();
}

}  // namespace openapi::interpret
