// Shared vocabulary of the interpretation methods.
//
// Every method ultimately produces the decision features D_c of Eq. 1 for
// an input x0 and class c. Black-box methods additionally expose the probe
// instances they consumed so the evaluation harness can score probe quality
// (the RD / WD metrics of Figs. 5-6) without re-deriving them.

#ifndef OPENAPI_INTERPRET_DECISION_FEATURES_H_
#define OPENAPI_INTERPRET_DECISION_FEATURES_H_

#include <vector>

#include "api/ground_truth.h"
#include "api/prediction_api.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"
#include "util/status.h"

namespace openapi::interpret {

using api::CoreParameters;
using linalg::Matrix;
using linalg::Vec;

/// The output of an interpretation method for one (x0, c) query.
struct Interpretation {
  Vec dc;  // decision features D_c (Eq. 1), length d

  /// Estimated core parameters per opposing class, indexed by c' in
  /// increasing order skipping c (size C-1). Empty for gradient methods,
  /// which do not go through core parameters.
  std::vector<CoreParameters> pairs;

  /// Probe instances the method queried (excluding x0 itself). Empty for
  /// gradient methods.
  std::vector<Vec> probes;

  /// Number of hypercube-shrinking iterations (OpenAPI; 1 otherwise).
  size_t iterations = 1;

  /// Final hypercube edge length / perturbation distance used.
  double edge_length = 0.0;

  /// API queries consumed by this call.
  uint64_t queries = 0;
};

/// Interface implemented by all black-box methods (OpenAPI, naive, ZOO,
/// LIME). Gradient-based baselines have a separate entry point in
/// gradient_methods.h because they require white-box access.
class BlackBoxInterpreter {
 public:
  virtual ~BlackBoxInterpreter() = default;

  /// Name used in benchmark tables ("OpenAPI", "ZOO", ...).
  virtual const char* name() const = 0;

  /// Interprets the prediction of `api`'s model on x0 for class c.
  virtual Result<Interpretation> Interpret(const api::PredictionApi& api,
                                           const Vec& x0, size_t c,
                                           util::Rng* rng) const = 0;
};

/// Combines per-pair estimates into D_c by Eq. 1:
/// D_c = (1/(C-1)) * sum_{c' != c} D_{c,c'}. `pairs` must hold C-1 entries.
Vec CombinePairEstimates(const std::vector<CoreParameters>& pairs);

/// Uniformly samples `count` instances from the hypercube
/// {p : |p_i - x0_i| <= r} (the paper's neighborhood definition).
std::vector<Vec> SampleHypercube(const Vec& x0, double r, size_t count,
                                 util::Rng* rng);

/// SampleHypercube's write-into sibling: overwrites *out with the same
/// draws (identical rng consumption order), reusing its buffers — the
/// shrink loop's allocation-free probe redraw.
void SampleHypercube(const Vec& x0, double r, size_t count, util::Rng* rng,
                     std::vector<Vec>* out);

/// Builds the coefficient matrix A of the linear systems in Sec. IV:
/// one row [1, p^T] per point, in the order {x0, probes...}. Shape:
/// (probes.size()+1) x (d+1); column 0 carries the bias coefficient.
Matrix BuildCoefficientMatrix(const Vec& x0, const std::vector<Vec>& probes);

/// BuildCoefficientMatrix's write-into sibling; *a is resized in place
/// (no allocation once its capacity covers the request's largest probe
/// set) and every entry overwritten.
void BuildCoefficientMatrix(const Vec& x0, const std::vector<Vec>& probes,
                            Matrix* a);

/// ln(y_c / y_{c'}) for one prediction vector. Fails with NumericalError if
/// either probability is non-positive (softmax underflow at the API).
Result<double> LogOdds(const Vec& y, size_t c, size_t c_prime);

/// Right-hand side vector ln(y_c/y_{c'}) for each prediction in
/// {y0, probe predictions...}, matching BuildCoefficientMatrix's row order.
Result<Vec> BuildLogOddsRhs(const std::vector<Vec>& predictions, size_t c,
                            size_t c_prime);

/// BuildLogOddsRhs's write-into sibling, reusing *rhs's buffer.
Status BuildLogOddsRhs(const std::vector<Vec>& predictions, size_t c,
                       size_t c_prime, Vec* rhs);

/// Re-expresses core-parameter pairs solved against reference class `ref`
/// as the pairs of class `c`: D_{c,c'} = D_{ref,c'} - D_{ref,c} and
/// D_{c,ref} = -D_{ref,c} (identically for the offsets B), since all pairs
/// are differences of the same hidden (W, b). Input is indexed by c' in
/// increasing order skipping `ref`; output by c' in increasing order
/// skipping `c`. `ref == c` returns the input unchanged. This is how the
/// solver answers requests whose reference class saturates at x0 (softmax
/// underflow): solve against a non-saturated reference, then change the
/// reference algebraically.
std::vector<CoreParameters> ConvertReferencePairs(
    const std::vector<CoreParameters>& ref_pairs, size_t ref, size_t c);

/// Assembles the canonical locally linear classifier from the C-1 core
/// parameter pairs of an interpretation run with reference class c = 0:
/// weights column c' is D_{c',0} = -D_{0,c'} (column 0 pinned to zero) and
/// bias c' is -B_{0,c'}. softmax(W^T x + b) of the canonical model equals
/// the hidden model's output throughout the region (softmax gauge freedom).
/// Shared by extract::LocalModelExtractor and the interpretation engine.
api::LocalLinearModel CanonicalModelFromPairs(
    const std::vector<CoreParameters>& pairs, size_t d);

/// Quantized FNV hash of a canonical model. Quantization is relative to
/// the model's own scale, so the fingerprint is stable under ~1e-10 solver
/// noise but distinguishes real regions; two extractions of one region
/// fingerprint identically, enabling black-box region deduplication.
uint64_t LocalModelFingerprint(const api::LocalLinearModel& model,
                               double resolution);

}  // namespace openapi::interpret

#endif  // OPENAPI_INTERPRET_DECISION_FEATURES_H_
