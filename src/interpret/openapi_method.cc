#include "interpret/openapi_method.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "linalg/least_squares.h"
#include "linalg/qr.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace openapi::interpret {
namespace {

/// Smallest probability whose log still has full double precision. Zero
/// AND subnormal probabilities count as saturated: a subnormal's ulp
/// error blows up log's accuracy far beyond consistency_tol, so a
/// subnormal y0[k] is just as unshrinkable a failure at the x0 row as an
/// exact zero. The detector, the reference pick, and the masked solver
/// must all agree on this threshold.
constexpr double kMinUsableProb = std::numeric_limits<double>::min();

/// Sizes ws->ref_pairs for num_classes - 1 pairs. Each pair's
/// coefficient buffer is reused by the assign() at the solve sites,
/// which sets its size itself.
void EnsurePairShapes(SolverWorkspace* ws, size_t num_classes) {
  ws->ref_pairs.resize(num_classes - 1);
}

/// Fast path (no saturation at x0): one shared QR factorization for all
/// C-1 systems over the full row set {x0, probes...}. Works entirely out
/// of the workspace (coefficient matrix, rhs, QR storage, pair buffers);
/// on success the solved pairs sit in ws->ref_pairs. Returns false when
/// the probe set is degenerate, a probe saturated, or any pair is
/// inconsistent — all of which mean "shrink and redraw".
bool SolvePairsSharedQr(const Vec& x0, size_t ref, size_t num_classes,
                        double tol, SolverWorkspace* ws) {
  BuildCoefficientMatrix(x0, ws->probes, &ws->coefficients);
  if (!ws->qr.Refactor(ws->coefficients).ok()) {
    return false;  // degenerate probes (probability 0)
  }
  EnsurePairShapes(ws, num_classes);
  size_t out = 0;
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == ref) continue;
    if (!BuildLogOddsRhs(ws->predictions, ref, c_prime, &ws->rhs).ok()) {
      return false;  // probe saturation: shrink, retry
    }
    ws->qr.Solve(ws->rhs, &ws->qr_scratch, &ws->solution);
    if (!linalg::IsConsistent(ws->solution, ws->rhs, tol)) return false;
    CoreParameters& pair = ws->ref_pairs[out++];
    pair.b = ws->solution.x[0];
    pair.d.assign(ws->solution.x.begin() + 1, ws->solution.x.end());
  }
  return true;
}

/// Outcome of the saturation path's attempt. The distinction matters for
/// the retry policy: an inconsistent system is the boundary-crossing
/// signal and wants a SMALLER hypercube, while "too few usable rows" means
/// the probe draw landed mostly on the saturated side — a halfspace
/// through x0 that shrinking can never escape — and wants a plain redraw
/// at the SAME edge.
enum class MaskedOutcome { kOk, kTooFewRows, kShrink };

/// Saturation path: some y0[k] underflowed to 0, so rows of a pair's
/// system can be non-finite no matter how small the hypercube gets. Each
/// pair keeps only the rows where both of its probabilities have full
/// double precision (subnormals are treated as saturated: their log would
/// carry quantization error far above consistency_tol and poison the
/// residual test); the caller compensates with adaptive top-up draws so
/// the surviving system stays overdetermined (>= d+2 rows), preserving
/// the consistency certificate of Theorem 2. Pairs get their own QR
/// (ws->qr, refactored per pair) because their row masks differ; the
/// masked matrix, rhs, and row-index scratch also live in the workspace.
MaskedOutcome SolvePairsMaskedRows(const Vec& x0, size_t ref,
                                   size_t num_classes, double tol,
                                   SolverWorkspace* ws) {
  const size_t d = x0.size();
  const std::vector<Vec>& probes = ws->probes;
  const std::vector<Vec>& predictions = ws->predictions;
  EnsurePairShapes(ws, num_classes);
  size_t out = 0;
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == ref) continue;
    // Row 0 is x0; row i+1 is probes[i].
    std::vector<size_t>& rows = ws->masked_rows;
    rows.clear();
    for (size_t row = 0; row < predictions.size(); ++row) {
      if (predictions[row][ref] >= kMinUsableProb &&
          predictions[row][c_prime] >= kMinUsableProb) {
        rows.push_back(row);
      }
    }
    if (rows.size() < d + 2) return MaskedOutcome::kTooFewRows;
    Matrix& a = ws->masked_coefficients;
    Vec& rhs = ws->masked_rhs;
    a.Resize(rows.size(), d + 1);
    rhs.resize(rows.size());
    for (size_t k = 0; k < rows.size(); ++k) {
      const Vec& point = rows[k] == 0 ? x0 : probes[rows[k] - 1];
      a(k, 0) = 1.0;
      for (size_t j = 0; j < d; ++j) a(k, j + 1) = point[j];
      auto odds = LogOdds(predictions[rows[k]], ref, c_prime);
      OPENAPI_CHECK(odds.ok());  // finite by the mask above
      rhs[k] = *odds;
    }
    if (!ws->qr.Refactor(a).ok()) return MaskedOutcome::kShrink;
    ws->qr.Solve(rhs, &ws->qr_scratch, &ws->solution);
    if (!linalg::IsConsistent(ws->solution, rhs, tol)) {
      return MaskedOutcome::kShrink;
    }
    CoreParameters& pair = ws->ref_pairs[out++];
    pair.b = ws->solution.x[0];
    pair.d.assign(ws->solution.x.begin() + 1, ws->solution.x.end());
  }
  return MaskedOutcome::kOk;
}

/// Worst usable-row deficit across all pairs against `ref`: how many more
/// usable rows the neediest pair requires to reach the overdetermined
/// d+2. Zero means every pair's masked system is solvable. Drives the
/// saturated path's adaptive top-up draws.
size_t MaxPairRowDeficit(const std::vector<Vec>& predictions, size_t ref,
                         size_t num_classes, size_t d) {
  size_t worst = 0;
  for (size_t c_prime = 0; c_prime < num_classes; ++c_prime) {
    if (c_prime == ref) continue;
    size_t usable = 0;
    for (const Vec& y : predictions) {
      if (y[ref] >= kMinUsableProb && y[c_prime] >= kMinUsableProb) {
        ++usable;
      }
    }
    const size_t needed = d + 2;
    worst = std::max(worst, usable < needed ? needed - usable : size_t{0});
  }
  return worst;
}

}  // namespace

void SolverWorkspace::Clear() {
  // Empty each row IN PLACE: vector::clear() on the outer vectors would
  // destroy the row Vecs and free their buffers, defeating the reuse.
  // The next request (or iteration) resizes rows back within their kept
  // capacity, so a Cleared workspace regrows nothing at its old shapes.
  for (Vec& p : probes) p.clear();
  for (Vec& y : predictions) y.clear();
  for (CoreParameters& pair : ref_pairs) pair.d.clear();
  rhs.clear();
  solution.x.clear();
  qr_scratch.qtb.clear();
  qr_scratch.ax.clear();
  masked_rows.clear();
  masked_rhs.clear();
  // Matrix::Resize keeps the data vector's capacity; the QR object keeps
  // its factorization storage outright (Refactor overwrites it wholesale).
  coefficients.Resize(0, 0);
  masked_coefficients.Resize(0, 0);
}

OpenApiInterpreter::OpenApiInterpreter(OpenApiConfig config)
    : config_(config) {
  OPENAPI_CHECK_GT(config_.max_iterations, 0u);
  OPENAPI_CHECK_GT(config_.initial_edge, 0.0);
  OPENAPI_CHECK(config_.shrink_factor > 0.0 && config_.shrink_factor < 1.0);
}

Result<Interpretation> OpenApiInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  return InterpretCounted(api, x0, c, rng, nullptr);
}

Result<Interpretation> OpenApiInterpreter::InterpretCounted(
    const api::PredictionApi& api, const Vec& x0, size_t c, util::Rng* rng,
    uint64_t* queries_consumed, const RequestOptions& options,
    size_t* iterations, const Vec* y0_hint, SolverWorkspace* workspace,
    ProbeRetryStats* retry_stats) const {
  // *queries_consumed seeds the count with what the caller already spent
  // on this request, so the budget gates (and their messages) speak in
  // request totals, not solver-local deltas.
  uint64_t consumed = queries_consumed != nullptr ? *queries_consumed : 0;
  size_t iters = 0;
  SolverWorkspace local_workspace;
  Result<Interpretation> result = InterpretImpl(
      api, x0, c, rng, &consumed, options, &iters, y0_hint,
      workspace != nullptr ? workspace : &local_workspace,
      /*caller_owned_workspace=*/workspace != nullptr, retry_stats);
  if (queries_consumed != nullptr) *queries_consumed = consumed;
  if (iterations != nullptr) *iterations = iters;
  return result;
}

Result<Interpretation> OpenApiInterpreter::InterpretImpl(
    const api::PredictionApi& api, const Vec& x0, size_t c, util::Rng* rng,
    uint64_t* consumed, const RequestOptions& options, size_t* iterations,
    const Vec* y0_hint, SolverWorkspace* ws, bool caller_owned_workspace,
    ProbeRetryStats* retry_stats) const {
  const size_t d = api.dim();
  const size_t num_classes = api.num_classes();
  if (x0.size() != d) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= num_classes) {
    return Status::InvalidArgument("class index out of range");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  Vec y0;
  if (y0_hint != nullptr) {
    y0 = *y0_hint;  // anchor prediction already paid for by the caller
  } else {
    // The anchor is the request's first endpoint traffic: gate it
    // predictively (a deadline the estimated anchor latency already
    // blows rejects with zero queries), then route it through the same
    // retry-aware dispatch as every probe chunk — a transiently failing
    // endpoint costs the anchor a retry, never the request.
    OPENAPI_RETURN_NOT_OK(EnforceRequestOptions(
        options, *consumed, 1,
        config_.dispatch.enabled ? EffectiveRowLatency(api, config_.dispatch)
                                 : 0.0));
    std::vector<Vec> anchor(1, x0);
    std::vector<Vec> anchor_prediction(1);
    OPENAPI_RETURN_NOT_OK(DispatchProbes(api, anchor, options,
                                         config_.dispatch, consumed,
                                         &anchor_prediction,
                                         /*out_offset=*/0, retry_stats));
    y0 = std::move(anchor_prediction[0]);
  }

  // Saturation analysis at the anchor. A class whose probability
  // underflows at x0 (zero or subnormal) makes that class's log-ratios
  // non-finite or hopelessly imprecise in the x0 row of every iteration —
  // shrinking can never fix it. Solve against
  // a reference that cannot saturate (argmax(y0) >= 1/C) and with per-pair
  // row masking; adaptive top-up draws keep masked systems
  // overdetermined. The requested class's pairs are recovered from the
  // reference pairs by ConvertReferencePairs.
  bool x0_saturated = false;
  for (double p : y0) x0_saturated = x0_saturated || p < kMinUsableProb;
  const size_t ref = y0[c] >= kMinUsableProb ? c : linalg::ArgMax(y0);
  const size_t probes_per_iter = d + 1;

  // Grow the probe/prediction buffers to the request's worst case once:
  // base draw plus the saturated path's top-up cap (d+1 extra), plus the
  // prepended y0 row.
  if (config_.reuse_workspace) {
    ws->probes.reserve(2 * probes_per_iter);
    ws->predictions.reserve(2 * probes_per_iter + 1);
  }

  double r = config_.initial_edge;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    if (!config_.reuse_workspace) {
      // Bench baseline for cross-iteration reuse: reset the workspace's
      // logical contents every iteration. Clear keeps the heap blocks —
      // a caller-supplied (pooled) workspace must never lose its grown
      // buffers to one request's config.
      ws->Clear();
    }
    // Sample the iteration's probes; together with x0 they give the
    // equations of Ω (Algorithm 1 line 2). The controls gate comes
    // first: a request rejected here never started this iteration, so it
    // is not counted in *iterations. (This gate covers the WHOLE batch's
    // budget — an iteration the budget cannot finish is never started,
    // because a partial probe set can't certify consistency — but it is
    // deliberately NOT predictive for the deadline: the EWMA is an
    // estimate, and refusing whole iterations on it would spuriously
    // fail feasible requests. The per-chunk gates inside DispatchProbes
    // bound the optimism to one chunk.)
    OPENAPI_RETURN_NOT_OK(
        CheckRequestControls(options, *consumed, probes_per_iter));
    *iterations = iter + 1;
    SampleHypercube(x0, r, probes_per_iter, rng, &ws->probes);
    // The iteration's probes go to the endpoint through the chunked
    // dispatch: one PredictBatch for unbounded requests, latency-sized
    // chunks with per-chunk control gates when a deadline or cancel
    // token is set. Predictions land in the workspace's stable row
    // buffers ({y0, probe predictions...}).
    ws->predictions.resize(ws->probes.size() + 1);
    ws->predictions[0].assign(y0.begin(), y0.end());
    OPENAPI_RETURN_NOT_OK(DispatchProbes(api, ws->probes, options,
                                         config_.dispatch, consumed,
                                         &ws->predictions,
                                         /*out_offset=*/1, retry_stats));

    bool solved = false;
    if (x0_saturated) {
      // Adaptive top-up: instead of doubling the whole budget upfront,
      // draw exactly the worst pair's usable-row deficit, re-check, and
      // repeat — capped at d+1 extra probes so an iteration never costs
      // more than the old uniform doubling. A pair that lost its x0 row
      // needs at least one top-up (d+2 probe rows > the d+1 base), but
      // when saturation is confined to near-x0 the deficit is 1 and the
      // iteration costs d+2 instead of 2(d+1).
      size_t top_up_cap = probes_per_iter;
      bool too_few_rows = false;
      for (;;) {
        const size_t deficit =
            MaxPairRowDeficit(ws->predictions, ref, num_classes, d);
        if (deficit == 0) break;
        if (top_up_cap == 0) {
          too_few_rows = true;
          break;
        }
        const size_t draw = std::min(deficit, top_up_cap);
        OPENAPI_RETURN_NOT_OK(CheckRequestControls(options, *consumed, draw));
        std::vector<Vec> extra = SampleHypercube(x0, r, draw, rng);
        std::vector<Vec> extra_predictions(draw);
        OPENAPI_RETURN_NOT_OK(DispatchProbes(api, extra, options,
                                             config_.dispatch, consumed,
                                             &extra_predictions,
                                             /*out_offset=*/0, retry_stats));
        top_up_cap -= draw;
        for (size_t k = 0; k < extra.size(); ++k) {
          ws->probes.push_back(std::move(extra[k]));
          ws->predictions.push_back(std::move(extra_predictions[k]));
        }
      }
      if (too_few_rows) {
        // The draws landed mostly on the saturated halfspace; shrinking
        // cannot change which side a symmetric hypercube covers, so
        // redraw at the same edge.
        continue;
      }
      switch (SolvePairsMaskedRows(x0, ref, num_classes,
                                   config_.consistency_tol, ws)) {
        case MaskedOutcome::kOk:
          solved = true;
          break;
        case MaskedOutcome::kTooFewRows:
          continue;  // unreachable given the deficit loop; kept as a guard
        case MaskedOutcome::kShrink:
          r *= config_.shrink_factor;
          continue;
      }
    } else {
      solved = SolvePairsSharedQr(x0, ref, num_classes,
                                  config_.consistency_tol, ws);
      if (!solved) {
        r *= config_.shrink_factor;
        continue;
      }
    }
    OPENAPI_CHECK(solved);

    std::vector<CoreParameters> pairs =
        ConvertReferencePairs(ws->ref_pairs, ref, c);
    Interpretation out;
    out.dc = CombinePairEstimates(pairs);
    out.pairs = std::move(pairs);
    if (caller_owned_workspace) {
      // A pooled / caller-held workspace keeps its grown probe buffers
      // for the next request; the response gets a copy (the same row
      // copies a move would have saved are what buys the pool its
      // zero-allocation steady state).
      out.probes = ws->probes;
    } else {
      // Request-local workspace: its buffers die with the request, so
      // hand the probe set to the caller instead of copying it.
      out.probes = std::move(ws->probes);
      ws->probes.clear();
    }
    out.iterations = iter + 1;
    out.edge_length = r;
    // Exact local accounting (1 for x0, probes_per_iter per iteration)
    // instead of a query-counter delta, which would also pick up
    // concurrent callers' queries when the api is shared across the
    // interpretation engine.
    out.queries = *consumed;
    return out;
  }
  return Status::DidNotConverge(util::StrFormat(
      "no consistent probe set within %zu iterations (final r=%.3g%s)",
      config_.max_iterations, r,
      x0_saturated ? ", saturated class at x0" : ""));
}

}  // namespace openapi::interpret
