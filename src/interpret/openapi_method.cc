#include "interpret/openapi_method.h"

#include "linalg/least_squares.h"
#include "linalg/qr.h"
#include "util/string_util.h"

namespace openapi::interpret {

OpenApiInterpreter::OpenApiInterpreter(OpenApiConfig config)
    : config_(config) {
  OPENAPI_CHECK_GT(config_.max_iterations, 0u);
  OPENAPI_CHECK_GT(config_.initial_edge, 0.0);
  OPENAPI_CHECK(config_.shrink_factor > 0.0 && config_.shrink_factor < 1.0);
}

Result<Interpretation> OpenApiInterpreter::Interpret(
    const api::PredictionApi& api, const Vec& x0, size_t c,
    util::Rng* rng) const {
  const size_t d = api.dim();
  const size_t num_classes = api.num_classes();
  if (x0.size() != d) {
    return Status::InvalidArgument("x0 dimensionality mismatch");
  }
  if (c >= num_classes) {
    return Status::InvalidArgument("class index out of range");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  const Vec y0 = api.Predict(x0);

  double r = config_.initial_edge;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter, r *= config_.shrink_factor) {
    // Sample d+1 probes; together with x0 they give the d+2 equations of
    // Ω_{d+2} (Algorithm 1 line 2). All probes of one iteration go to the
    // endpoint as a single batched request.
    std::vector<Vec> probes = SampleHypercube(x0, r, d + 1, rng);
    std::vector<Vec> predictions = api.PredictBatch(probes);
    predictions.insert(predictions.begin(), y0);

    // One shared QR factorization for all C-1 systems.
    Matrix a = BuildCoefficientMatrix(x0, probes);
    auto qr = linalg::QrDecomposition::Factor(a);
    if (!qr.ok()) continue;  // degenerate probe set (probability 0): redraw

    std::vector<CoreParameters> pairs;
    pairs.reserve(num_classes - 1);
    bool all_consistent = true;
    for (size_t c_prime = 0; c_prime < num_classes && all_consistent;
         ++c_prime) {
      if (c_prime == c) continue;
      auto rhs = BuildLogOddsRhs(predictions, c, c_prime);
      if (!rhs.ok()) {
        all_consistent = false;  // softmax saturation: shrink and retry
        break;
      }
      linalg::LeastSquaresSolution solution = qr->Solve(*rhs);
      if (!linalg::IsConsistent(solution, *rhs, config_.consistency_tol)) {
        all_consistent = false;
        break;
      }
      CoreParameters pair;
      pair.b = solution.x[0];
      pair.d.assign(solution.x.begin() + 1, solution.x.end());
      pairs.push_back(std::move(pair));
    }
    if (!all_consistent) continue;

    Interpretation out;
    out.dc = CombinePairEstimates(pairs);
    out.pairs = std::move(pairs);
    out.probes = std::move(probes);
    out.iterations = iter + 1;
    out.edge_length = r;
    // Exact local accounting (1 for x0, d+1 per iteration) instead of a
    // query-counter delta, which would also pick up concurrent callers'
    // queries when the api is shared across the interpretation engine.
    out.queries = 1 + out.iterations * (d + 1);
    return out;
  }
  return Status::DidNotConverge(util::StrFormat(
      "no consistent probe set within %zu iterations (final r=%.3g)",
      config_.max_iterations, r));
}

}  // namespace openapi::interpret
