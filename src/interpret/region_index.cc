#include "interpret/region_index.h"

#include <algorithm>

#include "util/check.h"

namespace openapi::interpret {
namespace {

constexpr int32_t kNoNode = -1;

}  // namespace

RegionIndex::RegionIndex(size_t dim, size_t leaf_capacity)
    : dim_(dim), leaf_capacity_(leaf_capacity) {
  OPENAPI_CHECK_GT(dim_, 0u);
  OPENAPI_CHECK_GT(leaf_capacity_, 0u);
}

bool RegionIndex::BoxContains(const double* lo, const double* hi,
                              const Vec& x) const {
  for (size_t j = 0; j < dim_; ++j) {
    if (x[j] < lo[j] || x[j] > hi[j]) return false;
  }
  return true;
}

void RegionIndex::ExpandBox(double* lo, double* hi, const double* add_lo,
                            const double* add_hi) const {
  for (size_t j = 0; j < dim_; ++j) {
    lo[j] = std::min(lo[j], add_lo[j]);
    hi[j] = std::max(hi[j], add_hi[j]);
  }
}

void RegionIndex::Insert(size_t slot, const Vec& lo, const Vec& hi) {
  OPENAPI_CHECK_EQ(lo.size(), dim_);
  OPENAPI_CHECK_EQ(hi.size(), dim_);
  OPENAPI_CHECK(!contains(slot));
  if (slot >= entries_.size()) {
    entries_.resize(slot + 1);
    entry_bounds_.resize((slot + 1) * 2 * dim_);
  }
  Entry& entry = entries_[slot];
  std::copy(lo.begin(), lo.end(), EntryLo(slot));
  std::copy(hi.begin(), hi.end(), EntryHi(slot));
  entry.locations.clear();
  entry.present = true;
  ++live_;
}

void RegionIndex::File(size_t slot, size_t bucket) {
  OPENAPI_CHECK(contains(slot));
  Entry& entry = entries_[slot];
  for (const Location& loc : entry.locations) {
    if (loc.bucket == bucket) return;  // idempotent
  }
  InsertIntoForest(bucket, slot);
}

void RegionIndex::Remove(size_t slot) {
  OPENAPI_CHECK(contains(slot));
  Entry& entry = entries_[slot];
  // Detach from every leaf first; rebuilds below re-derive locations for
  // OTHER slots, so this entry must already be gone from the trees.
  std::vector<Location> locations = std::move(entry.locations);
  entry.locations.clear();
  entry.present = false;
  --live_;
  for (const Location& loc : locations) {
    Tree* tree = loc.tree;
    Node& leaf = tree->nodes[loc.node];
    auto it = std::find(leaf.slots.begin(), leaf.slots.end(),
                        static_cast<uint32_t>(slot));
    OPENAPI_CHECK(it != leaf.slots.end());
    leaf.slots.erase(it);
    --tree->live;
    Forest& forest = forests_[loc.bucket];
    auto owner = std::find_if(
        forest.begin(), forest.end(),
        [tree](const std::unique_ptr<Tree>& t) { return t.get() == tree; });
    OPENAPI_CHECK(owner != forest.end());
    if (tree->live == 0) {
      forest.erase(owner);
    } else if (tree->live * 2 < tree->built) {
      // Over half the built slots are gone: rebuild compactly so stale
      // bounds and empty leaves cannot accumulate (amortized O(log n)
      // per removal — a slot is rebuilt only after as many removals).
      std::vector<uint32_t> survivors;
      AppendLiveSlots(*tree, &survivors);
      *owner = BuildTree(loc.bucket, std::move(survivors));
    }
    if (forest.empty()) forests_.erase(loc.bucket);
  }
}

void RegionIndex::Expand(size_t slot, const Vec& x) { Expand(slot, x, x); }

void RegionIndex::Expand(size_t slot, const Vec& lo, const Vec& hi) {
  OPENAPI_CHECK(contains(slot));
  OPENAPI_CHECK_EQ(lo.size(), dim_);
  Entry& entry = entries_[slot];
  ExpandBox(EntryLo(slot), EntryHi(slot), lo.data(), hi.data());
  for (const Location& loc : entry.locations) {
    RefitUp(loc.tree, loc.node, EntryLo(slot), EntryHi(slot));
  }
}

void RegionIndex::Clear() {
  entries_.clear();
  entry_bounds_.clear();
  forests_.clear();
  live_ = 0;
}

void RegionIndex::AppendLiveSlots(const Tree& tree,
                                  std::vector<uint32_t>* out) {
  for (const Node& node : tree.nodes) {
    out->insert(out->end(), node.slots.begin(), node.slots.end());
  }
}

void RegionIndex::InsertIntoForest(size_t bucket, size_t slot) {
  Forest& forest = forests_[bucket];
  forest.push_back(BuildTree(bucket, {static_cast<uint32_t>(slot)}));
  // Binary-counter merge: combining trees of comparable size keeps every
  // slot's lifetime rebuild count logarithmic and the forest at O(log n)
  // trees, independent of insertion order.
  while (forest.size() >= 2 &&
         forest[forest.size() - 2]->live <= forest.back()->live) {
    std::vector<uint32_t> merged;
    AppendLiveSlots(*forest[forest.size() - 2], &merged);
    AppendLiveSlots(*forest.back(), &merged);
    forest.pop_back();
    forest.pop_back();
    forest.push_back(BuildTree(bucket, std::move(merged)));
  }
}

std::unique_ptr<RegionIndex::Tree> RegionIndex::BuildTree(
    size_t bucket, std::vector<uint32_t> slots) {
  OPENAPI_CHECK(!slots.empty());
  auto tree = std::make_unique<Tree>();
  tree->live = tree->built = slots.size();
  // Worst-case node count of the median split: one leaf per
  // ceil(n / leaf_capacity) plus internals — reserve so node pointers
  // handed to BuildNode's recursion stay valid (indices are used, but
  // reserving avoids reallocation churn).
  const size_t cap = 2 * (slots.size() / leaf_capacity_ + 2);
  tree->nodes.reserve(cap);
  tree->bounds.reserve(cap * 2 * dim_);
  BuildNode(tree.get(), bucket, slots.data(), slots.size(), kNoNode);
  return tree;
}

int32_t RegionIndex::BuildNode(Tree* tree, size_t bucket, uint32_t* slots,
                               size_t count, int32_t parent) {
  const int32_t id = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[id].parent = parent;
  tree->bounds.resize((static_cast<size_t>(id) + 1) * 2 * dim_);
  {
    // Bound of everything below this node (expand-only afterwards).
    double* lo = NodeLo(tree, id, dim_);
    double* hi = lo + dim_;
    std::copy(EntryLo(slots[0]), EntryLo(slots[0]) + dim_, lo);
    std::copy(EntryHi(slots[0]), EntryHi(slots[0]) + dim_, hi);
    for (size_t i = 1; i < count; ++i) {
      ExpandBox(lo, hi, EntryLo(slots[i]), EntryHi(slots[i]));
    }
  }
  if (count <= leaf_capacity_) {
    Node& node = tree->nodes[id];
    node.slots.assign(slots, slots + count);
    for (size_t i = 0; i < count; ++i) {
      // A merge or rebuild re-files slots that already carry a location
      // for this bucket (pointing at the tree being replaced): overwrite
      // it in place rather than appending a duplicate.
      std::vector<Location>& locations = entries_[slots[i]].locations;
      auto it = std::find_if(
          locations.begin(), locations.end(),
          [bucket](const Location& loc) { return loc.bucket == bucket; });
      if (it != locations.end()) {
        it->tree = tree;
        it->node = id;
      } else {
        locations.push_back(Location{bucket, tree, id});
      }
    }
    return id;
  }
  // Median split on the dimension with the widest spread of box centers:
  // the classic balanced k-d construction, O(n log n) total.
  size_t split_dim = 0;
  double best_spread = -1.0;
  for (size_t j = 0; j < dim_; ++j) {
    double lo = EntryLo(slots[0])[j] + EntryHi(slots[0])[j];
    double hi = lo;
    for (size_t i = 1; i < count; ++i) {
      const double center2 = EntryLo(slots[i])[j] + EntryHi(slots[i])[j];
      lo = std::min(lo, center2);
      hi = std::max(hi, center2);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      split_dim = j;
    }
  }
  const size_t mid = count / 2;
  std::nth_element(slots, slots + mid, slots + count,
                   [this, split_dim](uint32_t a, uint32_t b) {
                     const double ca =
                         EntryLo(a)[split_dim] + EntryHi(a)[split_dim];
                     const double cb =
                         EntryLo(b)[split_dim] + EntryHi(b)[split_dim];
                     if (ca != cb) return ca < cb;
                     return a < b;  // deterministic tie-break
                   });
  const int32_t left = BuildNode(tree, bucket, slots, mid, id);
  const int32_t right =
      BuildNode(tree, bucket, slots + mid, count - mid, id);
  Node& node = tree->nodes[id];
  node.left = left;
  node.right = right;
  return id;
}

void RegionIndex::RefitUp(Tree* tree, int32_t node, const double* lo,
                          const double* hi) const {
  while (node != kNoNode) {
    double* nlo = NodeLo(tree, node, dim_);
    double* nhi = nlo + dim_;
    bool covered = true;
    for (size_t j = 0; j < dim_; ++j) {
      if (lo[j] < nlo[j]) {
        nlo[j] = lo[j];
        covered = false;
      }
      if (hi[j] > nhi[j]) {
        nhi[j] = hi[j];
        covered = false;
      }
    }
    // Parent bounds always cover child bounds, so the first ancestor that
    // already covers the expansion ends the walk.
    if (covered) return;
    node = tree->nodes[node].parent;
  }
}

void RegionIndex::StabTree(const Tree& tree, const Vec& x,
                           std::vector<size_t>* out) const {
  // Explicit stack: depth is logarithmic for balanced trees, but the
  // candidate walk should not gamble the C++ stack on it.
  std::vector<int32_t> pending;
  pending.push_back(0);
  while (!pending.empty()) {
    const int32_t id = pending.back();
    pending.pop_back();
    const double* nlo =
        tree.bounds.data() + static_cast<size_t>(id) * 2 * dim_;
    if (!BoxContains(nlo, nlo + dim_, x)) continue;
    const Node& node = tree.nodes[id];
    if (node.left == kNoNode) {
      for (uint32_t slot : node.slots) {
        if (!BoxContains(EntryLo(slot), EntryHi(slot), x)) continue;
        // Dedup across forests (a boundary-spanning region is filed under
        // several buckets). Candidate sets are tiny; linear is fine.
        if (std::find(out->begin(), out->end(), static_cast<size_t>(slot)) ==
            out->end()) {
          out->push_back(static_cast<size_t>(slot));
        }
      }
      continue;
    }
    pending.push_back(node.left);
    pending.push_back(node.right);
  }
}

void RegionIndex::Collect(const Vec& x, size_t first_bucket,
                          std::vector<size_t>* out) const {
  CollectBucket(x, first_bucket, out);
  CollectRest(x, first_bucket, out);
}

void RegionIndex::CollectBucket(const Vec& x, size_t bucket,
                                std::vector<size_t>* out) const {
  OPENAPI_CHECK_EQ(x.size(), dim_);
  auto it = forests_.find(bucket);
  if (it == forests_.end()) return;
  for (const auto& tree : it->second) StabTree(*tree, x, out);
}

void RegionIndex::CollectRest(const Vec& x, size_t exclude_bucket,
                              std::vector<size_t>* out) const {
  OPENAPI_CHECK_EQ(x.size(), dim_);
  for (const auto& [bucket, forest] : forests_) {
    if (bucket == exclude_bucket) continue;
    for (const auto& tree : forest) StabTree(*tree, x, out);
  }
}

size_t RegionIndex::tree_count() const {
  size_t count = 0;
  for (const auto& [bucket, forest] : forests_) count += forest.size();
  return count;
}

size_t RegionIndex::node_count() const {
  size_t count = 0;
  for (const auto& [bucket, forest] : forests_) {
    for (const auto& tree : forest) count += tree->nodes.size();
  }
  return count;
}

void RegionIndex::CheckConsistent() const {
  // Every present entry is reachable exactly once per filed bucket, and
  // its location points at the leaf actually holding it.
  size_t present = 0;
  for (size_t slot = 0; slot < entries_.size(); ++slot) {
    const Entry& entry = entries_[slot];
    if (!entry.present) {
      OPENAPI_CHECK(entry.locations.empty());
      continue;
    }
    ++present;
    for (const Location& loc : entry.locations) {
      const Node& leaf = loc.tree->nodes[loc.node];
      OPENAPI_CHECK(leaf.left == kNoNode);
      OPENAPI_CHECK(std::count(leaf.slots.begin(), leaf.slots.end(),
                               static_cast<uint32_t>(slot)) == 1);
      // No duplicate bucket filings.
      OPENAPI_CHECK(std::count_if(entry.locations.begin(),
                                  entry.locations.end(),
                                  [&loc](const Location& other) {
                                    return other.bucket == loc.bucket;
                                  }) == 1);
    }
  }
  OPENAPI_CHECK_EQ(present, live_);
  for (const auto& [bucket, forest] : forests_) {
    OPENAPI_CHECK(!forest.empty());
    for (const auto& tree : forest) {
      size_t stored = 0;
      OPENAPI_CHECK_EQ(tree->bounds.size(), tree->nodes.size() * 2 * dim_);
      for (size_t id = 0; id < tree->nodes.size(); ++id) {
        const Node& node = tree->nodes[id];
        const double* nlo = tree->bounds.data() + id * 2 * dim_;
        const double* nhi = nlo + dim_;
        if (node.left == kNoNode) {
          OPENAPI_CHECK(node.right == kNoNode);
          stored += node.slots.size();
          for (uint32_t slot : node.slots) {
            const Entry& entry = entries_[slot];
            OPENAPI_CHECK(entry.present);
            // Node bounds cover their payload (stab soundness).
            for (size_t j = 0; j < dim_; ++j) {
              OPENAPI_CHECK_LE(nlo[j], EntryLo(slot)[j]);
              OPENAPI_CHECK_GE(nhi[j], EntryHi(slot)[j]);
            }
            const bool located = std::any_of(
                entry.locations.begin(), entry.locations.end(),
                [&](const Location& loc) {
                  return loc.bucket == bucket && loc.tree == tree.get() &&
                         loc.node == static_cast<int32_t>(id);
                });
            OPENAPI_CHECK(located);
          }
        } else {
          for (int32_t child : {node.left, node.right}) {
            const Node& c = tree->nodes[child];
            const double* clo =
                tree->bounds.data() + static_cast<size_t>(child) * 2 * dim_;
            OPENAPI_CHECK_EQ(c.parent, static_cast<int32_t>(id));
            for (size_t j = 0; j < dim_; ++j) {
              OPENAPI_CHECK_LE(nlo[j], clo[j]);
              OPENAPI_CHECK_GE(nhi[j], clo[dim_ + j]);
            }
          }
        }
      }
      OPENAPI_CHECK_EQ(stored, tree->live);
      OPENAPI_CHECK_LE(tree->live, tree->built);
    }
  }
}

}  // namespace openapi::interpret
